(** Hardware descriptions for the simulated executors.

    The paper's headline experiments ran on machines this container does
    not have: a 4-socket 48-core NUMA box, an NVIDIA Fermi GPU cluster, and
    a 20-node EC2 cluster.  Per the reproduction's substitution policy
    (DESIGN.md §2) those targets are modeled analytically: each record here
    carries the small set of parameters — issue rates, memory bandwidths,
    link bandwidths, latencies — that the paper's scaling arguments
    actually depend on.  The presets below are calibrated to the published
    specs of the paper's testbeds. *)

(** One CPU socket. *)
type socket = {
  cores : int;
  core_gflops : float;  (** sustained per-core scalar throughput, GFLOP/s *)
  local_bw_gbs : float;  (** bandwidth to the socket's own memory, GB/s *)
  remote_bw_gbs : float;  (** bandwidth to another socket's memory, GB/s *)
}

(** A (possibly NUMA) shared-memory machine. *)
type numa = {
  sockets : int;
  socket : socket;
  malloc_numa_aware : bool;
      (** false models JVM-style allocation that cannot place memory on a
          chosen socket (paper §6.1: "performing NUMA-aware memory
          allocations is not currently possible within the JVM") *)
}

let total_cores (m : numa) = m.sockets * m.socket.cores

(** A discrete GPU. *)
type gpu = {
  sms : int;
  gpu_gflops : float;  (** peak arithmetic throughput *)
  mem_bw_gbs : float;  (** global memory bandwidth *)
  shared_kb_per_sm : int;  (** shared memory per SM; scalar reduction
                               temporaries must fit here (paper §6) *)
  pcie_bw_gbs : float;  (** host-device transfer bandwidth *)
  kernel_launch_us : float;
  uncoalesced_penalty : float;
      (** effective-bandwidth divisor for strided (uncoalesced) access *)
  vector_reduce_penalty : float;
      (** throughput divisor when reduction temporaries do not fit in
          shared memory (non-scalar reductions go through global memory) *)
}

(** One cluster node.  [mem_gb] is the node's memory capacity — the
    budget the memory-pressure model (DESIGN.md §11) charges spills and
    remote-read backpressure against. *)
type node = { numa : numa; gpu : gpu option; mem_gb : float }

(** A cluster of identical nodes. *)
type cluster = {
  nodes : int;
  node : node;
  net_bw_gbs : float;  (** per-link network bandwidth *)
  net_lat_us : float;  (** per-message latency *)
  ser_gbs : float;
      (** serialization/deserialization throughput per core — the dominant
          cost of JVM-based shuffles *)
  disk_gbs : float;
      (** per-node stable-storage bandwidth: checkpoint writes/restores and
          memory-pressure spills are charged against it (DESIGN.md §11) *)
}

(* ------------------------------------------------------------------ *)
(* Presets matching the paper's testbeds                               *)
(* ------------------------------------------------------------------ *)

(** The paper's single-machine testbed: 4 sockets of 12 Xeon E5-4657L
    cores, 256 GB per socket (§6).  Bandwidths follow the E5-4600 series
    datasheet: ~51 GB/s local DDR3-1333 per socket, QPI-limited remote
    access. *)
let stanford_numa : numa =
  { sockets = 4;
    socket = { cores = 12; core_gflops = 2.4; local_bw_gbs = 51.0; remote_bw_gbs = 12.0 };
    malloc_numa_aware = true;
  }

(** The same box as the JVM sees it: no NUMA-aware allocation. *)
let stanford_numa_jvm : numa = { stanford_numa with malloc_numa_aware = false }

(** NVIDIA Tesla C2050 (the GPU in the paper's 4-node cluster, §6.2). *)
let tesla_c2050 : gpu =
  { sms = 14;
    gpu_gflops = 515.0;  (* double-precision peak *)
    mem_bw_gbs = 144.0;
    shared_kb_per_sm = 48;
    pcie_bw_gbs = 6.0;
    kernel_launch_us = 10.0;
    (* effective-bandwidth penalties calibrated against the paper's Figure 6
       (left): transposing the input buys k-means ~2.2x, and the combination
       of transpose + Row-to-Column buys logistic regression ~2.5-4x *)
    uncoalesced_penalty = 2.2;
    vector_reduce_penalty = 2.0;
  }

(** One node of the paper's GPU cluster: 12 Xeon X5680 cores + one C2050. *)
let gpu_cluster_node : node =
  { numa =
      { sockets = 2;
        socket =
          { cores = 6; core_gflops = 3.3; local_bw_gbs = 32.0; remote_bw_gbs = 10.0 };
        malloc_numa_aware = true;
      };
    gpu = Some tesla_c2050;
    mem_gb = 48.0;
  }

(** The paper's 4-node GPU cluster, 1 GbE within a rack (§6.2). *)
let gpu_cluster : cluster =
  { nodes = 4;
    node = gpu_cluster_node;
    net_bw_gbs = 0.125;  (* 1 Gb Ethernet *)
    net_lat_us = 50.0;  (* within a single rack (§6.2) *)
    ser_gbs = 1.0;
    disk_gbs = 0.3;  (* local SATA disk *)
  }

(** Amazon EC2 m1.xlarge (paper §6.2): 4 virtual cores, 15 GB, 1 GbE. *)
let ec2_m1_xlarge_node : node =
  { numa =
      { sockets = 1;
        socket =
          { cores = 4; core_gflops = 1.2; local_bw_gbs = 10.0; remote_bw_gbs = 10.0 };
        malloc_numa_aware = true;
      };
    gpu = None;
    mem_gb = 15.0;  (* m1.xlarge memory *)
  }

(** The paper's 20-node EC2 cluster. *)
let ec2_cluster : cluster =
  { nodes = 20;
    node = ec2_m1_xlarge_node;
    net_bw_gbs = 0.125;
    net_lat_us = 250.0;  (* virtualized network *)
    ser_gbs = 0.8;
    disk_gbs = 0.1;  (* EBS-era magnetic storage *)
  }

(** Per-link network bandwidth in bytes/second — the conversion every
    byte-volume consumer (communication planning, the cluster simulator)
    needs when turning predicted volume into wire seconds. *)
let net_bytes_per_sec (c : cluster) : float = c.net_bw_gbs *. 1e9

(* ------------------------------------------------------------------ *)
(* Fault model                                                         *)
(* ------------------------------------------------------------------ *)

(** Failure characteristics of an execution platform (DESIGN.md §9).

    The paper's runtime assumes a healthy cluster; production clusters are
    not.  A [fault_model] describes a failure regime — crash rates,
    straggler slowdowns, lossy remote reads — as a handful of numbers, the
    same way the records above describe bandwidths and latencies.  Every
    injected schedule is a pure function of [fault_seed] and the fault
    site's coordinates (see [Dmll_runtime.Fault]), so runs are
    bit-reproducible regardless of scheduling. *)
type fault_model = {
  fault_seed : int;  (** same seed => same injected fault schedule *)
  crash_prob : float;  (** per-node (or per-chunk), per-multiloop crash probability *)
  crash_transient_frac : float;
      (** fraction of crashes that are transient (process restart, socket
          loss) rather than permanent node loss *)
  straggler_prob : float;  (** per-node, per-multiloop straggling probability *)
  straggler_slowdown : float;  (** execution-rate divisor of a straggling node *)
  read_drop_prob : float;  (** probability a remote read is dropped *)
  read_delay_prob : float;  (** probability a remote read sees a latency spike *)
  read_delay_us : float;  (** size of that latency spike *)
  max_retries : int;  (** bounded retries for transient faults *)
  backoff_us : float;  (** base of the exponential retry backoff *)
  heartbeat_ms : float;
      (** failure-detection heartbeat interval; a node is declared dead
          after three missed heartbeats *)
  join_prob : float;
      (** per-loop probability a spare node joins the cluster mid-job
          (elastic membership, DESIGN.md §11); joining triggers a
          directory-aligned rebalance onto the new live set *)
  leave_prob : float;
      (** per-node, per-loop probability of a {e graceful} permanent
          departure: the node drains its partitions before leaving, so no
          lineage is lost — unlike a crash *)
  spare_nodes : int;  (** pool of standby nodes available to join *)
  partition_prob : float;
      (** per-frame probability a master→worker link blackholes (frames
          dropped both ways) for roughly three heartbeat intervals —
          the TCP executor's network-partition model (DESIGN.md §16) *)
  sever_prob : float;  (** per-frame probability the link is cut mid-frame *)
  corrupt_prob : float;
      (** per-frame probability the frame payload is flipped on the wire
          (the CRC32 check must catch it) *)
  link_delay_prob : float;  (** per-frame probability of an injected link delay *)
  link_delay_ms : float;  (** size of that injected delay *)
}

(** A mildly unreliable commodity cluster; override fields per experiment
    (e.g. [{ default_faults with crash_prob = 0.05 }]). *)
let default_faults : fault_model =
  { fault_seed = 0x5EED;
    crash_prob = 0.02;
    crash_transient_frac = 0.5;
    straggler_prob = 0.05;
    straggler_slowdown = 4.0;
    read_drop_prob = 0.01;
    read_delay_prob = 0.02;
    read_delay_us = 500.0;
    max_retries = 3;
    backoff_us = 200.0;
    heartbeat_ms = 100.0;
    join_prob = 0.0;
    leave_prob = 0.0;
    spare_nodes = 4;
    partition_prob = 0.0;
    sever_prob = 0.0;
    corrupt_prob = 0.0;
    link_delay_prob = 0.0;
    link_delay_ms = 2.0;
  }

(** A single-socket laptop-class reference machine, handy for tests. *)
let small_smp : numa =
  { sockets = 1;
    socket = { cores = 4; core_gflops = 3.0; local_bw_gbs = 20.0; remote_bw_gbs = 20.0 };
    malloc_numa_aware = true;
  }

(** Scale a cluster to a different node count (used by sweep benches). *)
let with_nodes n (c : cluster) = { c with nodes = n }

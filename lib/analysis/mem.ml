(** Static memory-footprint & liveness analysis (DESIGN.md §13).

    The communication analysis ({!Comm}, DESIGN.md §10) predicts what a
    multiloop {e moves}; this module predicts what a node must {e hold}.
    For every spine position it derives the per-node resident set as the
    sum of two parts:

    - {e persistent} bytes: every collection storage root that is live at
      the position — partitioned collections count their chunk share
      ([|coll| / nodes]), [Local] collections their whole size (they live
      on the master, which is a node too).  Liveness comes from the IR's
      last-use metadata ({!Dmll_ir.Exp.collection_live_ranges}): storage
      is resident from its binding until its early-free marker
      ({!Dmll_opt.Free_insertion}) or, absent one, the end of the
      program — which is exactly why inserting frees shrinks the
      predicted peak;
    - {e transient} buffers of the loop at that position, reusing
      {!Comm}'s term vocabulary: a broadcast copy of every [Local]
      collection the loop consumes, a whole-collection replica for
      non-local-friendly partitioned stencils, bounded halo buffers for
      shifted intervals, and the master's per-node reduction partials /
      bucket tables.  When checkpointing is armed, the serialized
      snapshot image of the live set is charged on top.

    The peak over all positions is the {b symbolic peak resident}: the
    admission oracle ({!admit}) compares it against the node budget
    {e before} execution and picks spill-ahead or smaller chunking, and
    the cluster simulator's measured per-node resident demand must stay
    within {!slack} of the per-loop prediction (rule [M-MEM-OVERRUN],
    armed by [DMLL_DEBUG=1] — the analysis is falsifiable against the
    runtime, like the comm plans). *)

open Dmll_ir
open Exp
module M = Dmll_machine.Machine

(* ------------------------------------------------------------------ *)
(* The term language                                                   *)
(* ------------------------------------------------------------------ *)

(** A transient per-loop buffer on some node's heap. *)
type buffer =
  | Broadcast_copy of Stencil.target
      (** worker-side copy of a [Local] collection the loop consumes *)
  | Replica of Stencil.target
      (** whole-collection buffer: an [All] stencil replica, or the
          worst-case paging window of an [Unknown] stencil *)
  | Halo_buf of { target : Stencil.target; width : int }
      (** bounded border exchange buffer of a shifted-interval stencil *)
  | Partials of { gname : string; init : exp option }
      (** master-side merge scratch: one reduction partial (or bucket
          table, when [init] is [None]) per node *)

type term = { buffer : buffer; note : string }

let kind_to_string (t : term) : string =
  match t.buffer with
  | Broadcast_copy _ -> "broadcast-copy"
  | Replica _ -> "replica"
  | Halo_buf _ -> "halo"
  | Partials _ -> "partials"

let target_of_term (t : term) : Stencil.target option =
  match t.buffer with
  | Broadcast_copy tg | Replica tg | Halo_buf { target = tg; _ } -> Some tg
  | Partials _ -> None

type loop_plan = {
  label : string;  (** binder name of the loop's result, or ["result"] *)
  position : int;  (** spine position of the loop step *)
  distributed : bool;
  terms : term list;
}

(* ------------------------------------------------------------------ *)
(* Liveness over the spine                                             *)
(* ------------------------------------------------------------------ *)

(** One collection storage root's residency window, in spine positions:
    resident for [bound_at <= pos < dies_at].  [dies_at] is the position
    of the early-free marker when one exists, else the spine length
    (live to the end).  [read = false] marks a dead array — storage no
    step ever consumes beyond aliasing it (rule [W-DEAD-ARRAY]). *)
type live = {
  target : Stencil.target;
  ty : Types.ty;
  layout : Exp.layout;
  bound_at : int;
  last_use : int;
  dies_at : int;
  read : bool;
  freed : bool;
}

let target_of_storage = function
  | Exp.Ssym s -> Stencil.Tsym s
  | Exp.Sinput n -> Stencil.Tinput n

let liveness ~(layout_of : Stencil.target -> Exp.layout) (e : exp) : live list =
  let spine_len = List.length (spine e) in
  List.map
    (fun (r : live_range) ->
      let target = target_of_storage r.storage in
      { target;
        ty = r.ty;
        layout = layout_of target;
        bound_at = r.bound_at;
        last_use = r.last_use;
        dies_at = (match r.freed_at with Some f -> f | None -> spine_len);
        read = r.read;
        freed = r.freed_at <> None;
      })
    (collection_live_ranges e)

(** [W-DEAD-ARRAY] warnings: distributed (partitioned) collection storage
    the program binds but never reads.  Reported by [dmllc --lint]
    outside debug mode too. *)
let dead_array_diags ~(layout_of : Stencil.target -> Exp.layout) (e : exp) :
    Diag.t list =
  List.filter_map
    (fun (lv : live) ->
      if (not lv.read) && lv.layout = Exp.Partitioned then
        Some
          (Diag.warning ~rule:"W-DEAD-ARRAY"
             "distributed array %s is bound but never read: it occupies a \
              chunk on every node for nothing (the early-free pass reclaims \
              it immediately; better, delete the binding)"
             (Stencil.target_to_string lv.target))
      else None)
    (liveness ~layout_of e)

(* ------------------------------------------------------------------ *)
(* Plan derivation                                                     *)
(* ------------------------------------------------------------------ *)

(** The per-loop transient-buffer plan under the given layouts. *)
let of_loop ~(layout_of : Stencil.target -> Exp.layout) ?(label = "loop")
    ~(position : int) (l : loop) : loop_plan =
  (* as in {!Comm.of_loop}: only collections free in the loop occupy node
     memory beyond the chunk itself; symbols bound inside are
     per-iteration temporaries *)
  let free = free_vars (Loop l) in
  let stencils =
    List.filter
      (fun (t, _) ->
        match t with
        | Stencil.Tsym s -> Sym.Set.mem s free
        | Stencil.Tinput _ -> true)
      (Stencil.of_loop l)
  in
  let distributed =
    List.exists (fun (t, _) -> layout_of t = Exp.Partitioned) stencils
  in
  if not distributed then { label; position; distributed = false; terms = [] }
  else
    let input_terms =
      List.filter_map
        (fun (t, s) ->
          if layout_of t = Exp.Partitioned then
            if not (Stencil.local_friendly s) then
              Some
                { buffer = Replica t;
                  note =
                    (match s with
                    | Stencil.All -> "replica: All stencil (every node sweeps it)"
                    | _ -> "worst case: data-dependent subscript pages it all");
                }
            else
              let w = Stencil.halo_width s in
              if w = 0 then None
              else
                Some
                  { buffer = Halo_buf { target = t; width = w };
                    note = Printf.sprintf "bounded halo buffer, width %d" w;
                  }
          else
            Some
              { buffer = Broadcast_copy t;
                note = "local collection copied to every node";
              })
        stencils
    in
    let gen_terms =
      List.filter_map
        (fun g ->
          match g with
          | Collect _ -> None (* the output chunk is persistent, not scratch *)
          | Reduce { init; _ } ->
              Some
                { buffer = Partials { gname = "reduce"; init = Some init };
                  note = "master merges one partial per node";
                }
          | BucketCollect _ ->
              Some
                { buffer = Partials { gname = "bucketCollect"; init = None };
                  note = "master merges per-node bucket tables";
                }
          | BucketReduce _ ->
              Some
                { buffer = Partials { gname = "bucketReduce"; init = None };
                  note = "master merges per-node bucket tables";
                })
        l.gens
    in
    { label; position; distributed = true; terms = input_terms @ gen_terms }

(** The whole-program footprint plan: liveness windows plus one transient
    plan per spine-step multiloop (the loops the cluster executor
    schedules; loops nested inside sequential steps run on the master
    inside one step's evaluation). *)
type program_plan = {
  spine_len : int;
  labels : string array;  (** binder name per position; last is ["result"] *)
  lives : live list;
  loops : loop_plan list;
}

let plan_of_program ~(layout_of : Stencil.target -> Exp.layout) (e : exp) :
    program_plan =
  let steps = spine e in
  let labels =
    Array.of_list
      (List.map
         (fun (binder, _) ->
           match binder with Some s -> Sym.name s | None -> "result")
         steps)
  in
  let loops =
    List.concat
      (List.mapi
         (fun position (binder, rhs) ->
           match rhs with
           | Loop l ->
               let label =
                 match binder with Some s -> Sym.to_string s | None -> "result"
               in
               [ of_loop ~layout_of ~label ~position l ]
           | _ -> [])
         steps)
  in
  { spine_len = List.length steps;
    labels;
    lives = liveness ~layout_of e;
    loops;
  }

(* ------------------------------------------------------------------ *)
(* Byte resolution                                                     *)
(* ------------------------------------------------------------------ *)

(** Volumes resolve against {!Comm}'s resolver — statically (declared
    types, registered input lengths) or live (runtime values). *)
type resolver = Comm.resolver

let term_bytes ~(nodes : int) (r : resolver) (t : term) : float =
  match t.buffer with
  | Broadcast_copy tg | Replica tg -> r.Comm.collection_bytes tg
  | Halo_buf { target; width } ->
      Comm.stencil_bytes ~nodes ~elem_bytes:(r.Comm.elem_bytes target)
        ~collection_bytes:(r.Comm.collection_bytes target)
        (Stencil.Interval_shifted width)
  | Partials { init = Some i; _ } -> r.Comm.init_bytes i *. float_of_int nodes
  | Partials { init = None; _ } ->
      Comm.bucket_table_bytes *. float_of_int nodes

(** Per-node resident share of one live collection: partitioned storage
    holds [1/(nodes * chunk_factor)] of its bytes per node
    ([chunk_factor > 1] models the admission oracle's sub-chunked
    execution); [Local] storage is whole. *)
let live_bytes ~(nodes : int) ?(chunk_factor = 1) (r : resolver) (lv : live) :
    float =
  let b = r.Comm.collection_bytes lv.target in
  match lv.layout with
  | Exp.Partitioned -> b /. float_of_int (Stdlib.max 1 (nodes * chunk_factor))
  | Exp.Local -> b

let live_at (p : program_plan) ~(position : int) : live list =
  List.filter
    (fun lv -> lv.bound_at <= position && position < lv.dies_at)
    p.lives

let persistent_bytes ~nodes ?chunk_factor (r : resolver) (p : program_plan)
    ~(position : int) : float =
  List.fold_left
    (fun acc lv -> acc +. live_bytes ~nodes ?chunk_factor r lv)
    0.0
    (live_at p ~position)

let transient_bytes ~nodes (r : resolver) (p : program_plan)
    ~(position : int) : float =
  match List.find_opt (fun lp -> lp.position = position) p.loops with
  | Some lp ->
      List.fold_left (fun acc t -> acc +. term_bytes ~nodes r t) 0.0 lp.terms
  | None -> 0.0

(* The serialized snapshot image of the live set (checkpointing charges
   full collection bytes: the image is not chunk-sharded on the writer). *)
let checkpoint_bytes (r : resolver) (p : program_plan) ~(position : int) :
    float =
  List.fold_left
    (fun acc (lv : live) -> acc +. r.Comm.collection_bytes lv.target)
    0.0
    (live_at p ~position)

(** Predicted per-node resident bytes at one spine position: live
    persistent shares + the position's transient buffers + (when
    [checkpointed]) the snapshot image. *)
let resident_bytes ~(nodes : int) ?(chunk_factor = 1) ?(checkpointed = false)
    (r : resolver) (p : program_plan) ~(position : int) : float =
  persistent_bytes ~nodes ~chunk_factor r p ~position
  +. transient_bytes ~nodes r p ~position
  +. (if checkpointed then checkpoint_bytes r p ~position else 0.0)

(* ------------------------------------------------------------------ *)
(* Program summary                                                     *)
(* ------------------------------------------------------------------ *)

type row = {
  position : int;
  label : string;
  plan : loop_plan option;  (** [None] for non-loop spine steps *)
  persistent : float;
  transient : float;
  resident : float;
  resolved : (term * float) list;
}

type summary = {
  nodes : int;
  plan : program_plan;
  rows : row list;  (** one per spine position *)
  lives : (live * float) list;  (** with per-node resident bytes *)
  peak_bytes : float;
  peak_label : string;
  peak_position : int;
  peak_fixed_bytes : float;
      (** at the peak: buffers + [Local] residents — what smaller
          chunking cannot shrink *)
  peak_divisible_bytes : float;
      (** at the peak: partitioned chunk shares — shrinks as [1/k] under
          sub-chunked execution *)
  budget_bytes : float;
  over_budget : bool;
  checkpointed : bool;
}

let summarize ?input_lens ?default_len ?(machine = M.ec2_cluster) ?budget_gb
    ?(checkpointed = false) ~(layout_of : Stencil.target -> Exp.layout)
    (e : exp) : summary =
  let r = Comm.static_resolver ?input_lens ?default_len e in
  let nodes = machine.M.nodes in
  let p = plan_of_program ~layout_of e in
  let rows =
    List.init p.spine_len (fun position ->
        let plan =
          List.find_opt (fun (lp : loop_plan) -> lp.position = position) p.loops
        in
        let persistent = persistent_bytes ~nodes r p ~position in
        let transient = transient_bytes ~nodes r p ~position in
        let ck = if checkpointed then checkpoint_bytes r p ~position else 0.0 in
        let resolved =
          match plan with
          | Some lp -> List.map (fun t -> (t, term_bytes ~nodes r t)) lp.terms
          | None -> []
        in
        { position;
          label = p.labels.(position);
          plan;
          persistent;
          transient;
          resident = persistent +. transient +. ck;
          resolved;
        })
  in
  let peak =
    List.fold_left
      (fun best row ->
        match best with
        | Some b when b.resident >= row.resident -> best
        | _ -> Some row)
      None rows
  in
  let peak_bytes, peak_label, peak_position =
    match peak with
    | Some row -> (row.resident, row.label, row.position)
    | None -> (0.0, "empty", 0)
  in
  let peak_divisible_bytes =
    List.fold_left
      (fun acc (lv : live) ->
        if lv.layout = Exp.Partitioned then
          acc +. live_bytes ~nodes r lv
        else acc)
      0.0
      (live_at p ~position:peak_position)
  in
  let budget_bytes =
    (match budget_gb with Some g -> g | None -> machine.M.node.M.mem_gb) *. 1e9
  in
  { nodes;
    plan = p;
    rows;
    lives = List.map (fun lv -> (lv, live_bytes ~nodes r lv)) p.lives;
    peak_bytes;
    peak_label;
    peak_position;
    peak_fixed_bytes = peak_bytes -. peak_divisible_bytes;
    peak_divisible_bytes;
    budget_bytes;
    over_budget = peak_bytes > budget_bytes;
    checkpointed;
  }

(** Predicted peak resident bytes per node — the scalar the admission
    oracle and the early-free acceptance tests compare. *)
let static_peak ?input_lens ?default_len ?machine ?budget_gb ?checkpointed
    ~layout_of (e : exp) : float =
  (summarize ?input_lens ?default_len ?machine ?budget_gb ?checkpointed
     ~layout_of e)
    .peak_bytes

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(** The pre-execution admission decision (DESIGN.md §13): when the static
    peak exceeds the node budget, either process each distributed loop in
    [k] sub-chunks (the partitioned shares shrink to [1/k], at the price
    of [k-1] extra loop launches) or accept the plan and spill the
    overshoot to disk ahead of time.  Chunking cannot help when the fixed
    part (broadcast copies, replicas, partials, [Local] residents)
    already exceeds the budget. *)
type admission = Admit | Chunk_smaller of int | Spill_ahead

(** Beyond this sub-chunk factor the launch overhead dwarfs the memory
    saved — spill instead. *)
let max_chunk_factor = 64

let admit (s : summary) : admission =
  if s.peak_bytes <= s.budget_bytes then Admit
  else
    let headroom = s.budget_bytes -. s.peak_fixed_bytes in
    if headroom <= 0.0 then Spill_ahead
    else
      let k = int_of_float (ceil (s.peak_divisible_bytes /. headroom)) in
      if k <= 1 then Admit
      else if k > max_chunk_factor then Spill_ahead
      else Chunk_smaller k

let admission_to_string = function
  | Admit -> "admit"
  | Chunk_smaller k -> Printf.sprintf "chunk:%d" k
  | Spill_ahead -> "spill-ahead"

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let term_formula (t : term) : string =
  match t.buffer with
  | Broadcast_copy tg | Replica tg ->
      Printf.sprintf "|%s| * elem" (Stencil.target_to_string tg)
  | Halo_buf { target; width } ->
      Printf.sprintf "min(%d * nodes * elem, |%s| * elem)" width
        (Stencil.target_to_string target)
  | Partials { gname; init = Some _ } ->
      Printf.sprintf "sizeof(%s init) * nodes" gname
  | Partials { gname; init = None } ->
      Printf.sprintf "%.0fB table * nodes (%s)" Comm.bucket_table_bytes gname

let pp_summary fmt (s : summary) =
  Fmt.pf fmt "mem plan (%d nodes, budget %s):@." s.nodes
    (Comm.fmt_bytes s.budget_bytes);
  Fmt.pf fmt "  liveness (per-node resident shares):@.";
  List.iter
    (fun ((lv : live), b) ->
      Fmt.pf fmt "    %-24s %-12s pos %d..%s %s%s~%s@."
        (Stencil.target_to_string lv.target)
        (match lv.layout with
        | Exp.Partitioned -> "partitioned"
        | Exp.Local -> "local")
        lv.bound_at
        (if lv.freed then Printf.sprintf "%d (freed)" (lv.dies_at - 1)
         else "end")
        (if lv.read then "" else "DEAD ")
        ""
        (Comm.fmt_bytes b))
    s.lives;
  Fmt.pf fmt "  per-position residents:@.";
  List.iter
    (fun row ->
      Fmt.pf fmt "    pos %-3d %-14s %-12s persistent %s + buffers %s = %s%s@."
        row.position row.label
        (match row.plan with
        | Some lp when lp.distributed -> "distributed"
        | Some _ -> "master-only"
        | None -> "sequential")
        (Comm.fmt_bytes row.persistent)
        (Comm.fmt_bytes row.transient)
        (Comm.fmt_bytes row.resident)
        (if row.position = s.peak_position then "   <- peak" else "");
      List.iter
        (fun ((t : term), b) ->
          Fmt.pf fmt "      %-14s %-10s %-42s ~%s  (%s)@." (kind_to_string t)
            (match target_of_term t with
            | Some tg -> Stencil.target_to_string tg
            | None -> "-")
            (term_formula t) (Comm.fmt_bytes b) t.note)
        row.resolved)
    s.rows;
  Fmt.pf fmt "  peak: %s at %s (pos %d) — %s budget %s@."
    (Comm.fmt_bytes s.peak_bytes)
    s.peak_label s.peak_position
    (if s.over_budget then "OVER" else "under")
    (Comm.fmt_bytes s.budget_bytes)

let summary_to_json ~(app : string) ~(admission : admission)
    ?(peak_no_free : float option) (s : summary) : string =
  let esc = Comm.json_escape in
  let live_json ((lv : live), b) =
    Printf.sprintf
      "{\"target\":\"%s\",\"layout\":\"%s\",\"bound_at\":%d,\"last_use\":%d,\"freed_at\":%s,\"dead\":%b,\"resident_bytes\":%.0f}"
      (esc (Stencil.target_to_string lv.target))
      (match lv.layout with
      | Exp.Partitioned -> "partitioned"
      | Exp.Local -> "local")
      lv.bound_at lv.last_use
      (if lv.freed then string_of_int (lv.dies_at) else "null")
      (not lv.read) b
  in
  let term_json ((t : term), b) =
    Printf.sprintf
      "{\"kind\":\"%s\",\"target\":%s,\"formula\":\"%s\",\"bytes\":%.0f,\"note\":\"%s\"}"
      (kind_to_string t)
      (match target_of_term t with
      | Some tg -> Printf.sprintf "\"%s\"" (esc (Stencil.target_to_string tg))
      | None -> "null")
      (esc (term_formula t))
      b (esc t.note)
  in
  let row_json row =
    Printf.sprintf
      "{\"position\":%d,\"label\":\"%s\",\"distributed\":%s,\"persistent_bytes\":%.0f,\"transient_bytes\":%.0f,\"resident_bytes\":%.0f,\"terms\":[%s]}"
      row.position (esc row.label)
      (match row.plan with
      | Some lp -> string_of_bool lp.distributed
      | None -> "null")
      row.persistent row.transient row.resident
      (String.concat "," (List.map term_json row.resolved))
  in
  Printf.sprintf
    "{\"app\":\"%s\",\"nodes\":%d,\"budget_bytes\":%.0f,\"liveness\":[%s],\"residents\":[%s],\"peak_bytes\":%.0f,\"peak_loop\":\"%s\",%s\"over_budget\":%b,\"admission\":\"%s\"}"
    (esc app) s.nodes s.budget_bytes
    (String.concat "," (List.map live_json s.lives))
    (String.concat "," (List.map row_json s.rows))
    s.peak_bytes (esc s.peak_label)
    (match peak_no_free with
    | Some b -> Printf.sprintf "\"peak_no_free_bytes\":%.0f," b
    | None -> "")
    s.over_budget
    (admission_to_string admission)

(* ------------------------------------------------------------------ *)
(* Prediction-vs-measurement contract                                  *)
(* ------------------------------------------------------------------ *)

(** Is runtime cross-validation armed?  Off by default; [Dmll.Config]
    arms it alongside the other debug-mode contracts ([DMLL_DEBUG=1] via
    [Dmll.Config.of_env]); tests flip it directly. *)
let validate_enabled = ref false

(** Multiplicative slack: value boxing the static element sizes cannot
    see, and chunk-boundary rounding. *)
let slack = 1.25

(** Additive floor, so scalar-only residents with fixed-size control
    state never trip the check. *)
let slack_floor_bytes = 4096.0

(** Assert [measured <= slack * predicted + floor].  Raises
    {!Diag.Failed} with rule [M-MEM-OVERRUN] otherwise: the footprint
    plan missed a buffer the runtime actually holds. *)
let check_measured ~(site : string) ~(label : string) ~(predicted : float)
    ~(measured : float) : unit =
  if measured > (slack *. predicted) +. slack_floor_bytes then
    raise
      (Diag.Failed
         { stage = site;
           diags =
             [ Diag.error ~rule:"M-MEM-OVERRUN"
                 "%s: measured resident %s exceeds predicted %s (slack %.2fx \
                  + %.0fB): the footprint plan is missing a buffer"
                 label (Comm.fmt_bytes measured) (Comm.fmt_bytes predicted)
                 slack slack_floor_bytes;
             ];
         })

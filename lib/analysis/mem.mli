(** Static memory-footprint & liveness analysis (DESIGN.md §13).

    Predicts, per multiloop and per spine position, the symbolic peak
    resident bytes a node must hold: live collection chunk shares
    (liveness from {!Dmll_ir.Exp.collection_live_ranges}, shortened by
    {!Dmll_opt.Free_insertion}'s early-free markers), transient
    broadcast/replica/halo/partials buffers (reusing {!Comm}'s cost
    terms), and optionally the checkpoint snapshot image.  The peak
    drives the pre-execution admission decision ({!admit}) and is
    cross-validated against the cluster simulator's measured residents
    under rule [M-MEM-OVERRUN]. *)

open Dmll_ir
module M = Dmll_machine.Machine

(** {1 Term language} *)

type buffer =
  | Broadcast_copy of Stencil.target
      (** worker-side copy of a [Local] collection the loop consumes *)
  | Replica of Stencil.target
      (** whole-collection buffer ([All] or data-dependent stencil) *)
  | Halo_buf of { target : Stencil.target; width : int }
      (** bounded border-exchange buffer of a shifted interval *)
  | Partials of { gname : string; init : Exp.exp option }
      (** master-side merge scratch, one partial/table per node *)

type term = { buffer : buffer; note : string }

val kind_to_string : term -> string
val target_of_term : term -> Stencil.target option
val term_formula : term -> string

type loop_plan = {
  label : string;
  position : int;
  distributed : bool;
  terms : term list;
}

(** {1 Liveness} *)

(** A collection storage root's residency window over the let-spine:
    resident for [bound_at <= pos < dies_at]. *)
type live = {
  target : Stencil.target;
  ty : Types.ty;
  layout : Exp.layout;
  bound_at : int;
  last_use : int;
  dies_at : int;
  read : bool;  (** [false] = dead array, never consumed *)
  freed : bool;  (** an early-free marker ends its life *)
}

val liveness : layout_of:(Stencil.target -> Exp.layout) -> Exp.exp -> live list

(** [W-DEAD-ARRAY]: partitioned storage bound but never read. *)
val dead_array_diags :
  layout_of:(Stencil.target -> Exp.layout) -> Exp.exp -> Diag.t list

(** {1 Plan derivation} *)

val of_loop :
  layout_of:(Stencil.target -> Exp.layout) ->
  ?label:string ->
  position:int ->
  Exp.loop ->
  loop_plan

type program_plan = {
  spine_len : int;
  labels : string array;
  lives : live list;
  loops : loop_plan list;  (** one per spine-step multiloop, spine order *)
}

val plan_of_program :
  layout_of:(Stencil.target -> Exp.layout) -> Exp.exp -> program_plan

(** {1 Byte resolution} *)

type resolver = Comm.resolver

val term_bytes : nodes:int -> resolver -> term -> float

val live_bytes : nodes:int -> ?chunk_factor:int -> resolver -> live -> float

val live_at : program_plan -> position:int -> live list

val persistent_bytes :
  nodes:int -> ?chunk_factor:int -> resolver -> program_plan ->
  position:int -> float

val transient_bytes :
  nodes:int -> resolver -> program_plan -> position:int -> float

(** Predicted per-node resident bytes at one spine position. *)
val resident_bytes :
  nodes:int ->
  ?chunk_factor:int ->
  ?checkpointed:bool ->
  resolver ->
  program_plan ->
  position:int ->
  float

(** {1 Program summary} *)

type row = {
  position : int;
  label : string;
  plan : loop_plan option;
  persistent : float;
  transient : float;
  resident : float;
  resolved : (term * float) list;
}

type summary = {
  nodes : int;
  plan : program_plan;
  rows : row list;
  lives : (live * float) list;
  peak_bytes : float;
  peak_label : string;
  peak_position : int;
  peak_fixed_bytes : float;
  peak_divisible_bytes : float;
  budget_bytes : float;
  over_budget : bool;
  checkpointed : bool;
}

val summarize :
  ?input_lens:(string * int) list ->
  ?default_len:int ->
  ?machine:M.cluster ->
  ?budget_gb:float ->
  ?checkpointed:bool ->
  layout_of:(Stencil.target -> Exp.layout) ->
  Exp.exp ->
  summary

(** Predicted peak resident bytes per node. *)
val static_peak :
  ?input_lens:(string * int) list ->
  ?default_len:int ->
  ?machine:M.cluster ->
  ?budget_gb:float ->
  ?checkpointed:bool ->
  layout_of:(Stencil.target -> Exp.layout) ->
  Exp.exp ->
  float

(** {1 Admission} *)

(** Pre-execution decision when the static peak exceeds the node budget:
    sub-chunk the distributed loops by [k] ([Chunk_smaller k]) or accept
    and spill the overshoot ahead of time ([Spill_ahead]). *)
type admission = Admit | Chunk_smaller of int | Spill_ahead

val max_chunk_factor : int
val admit : summary -> admission
val admission_to_string : admission -> string

(** {1 Rendering} *)

val pp_summary : Format.formatter -> summary -> unit

val summary_to_json :
  app:string -> admission:admission -> ?peak_no_free:float -> summary -> string

(** {1 Prediction-vs-measurement contract (rule [M-MEM-OVERRUN])} *)

val validate_enabled : bool ref
val slack : float
val slack_floor_bytes : float

(** Assert [measured <= slack * predicted + floor]; raises {!Diag.Failed}
    with rule [M-MEM-OVERRUN] otherwise. *)
val check_measured :
  site:string -> label:string -> predicted:float -> measured:float -> unit

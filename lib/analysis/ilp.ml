(** A dependency-free 0-1 integer linear program solver.

    The plan-space analysis ({!Plan}) encodes its joint
    fusion/rewrite/layout decision as a small binary program — tens of
    variables, a handful of structured constraints — so a general LP
    library would be overkill and an external solver a forbidden
    dependency.  This module solves exactly that class:

    {v minimize    sum_i cost_i * x_i          x_i in {0,1}
       subject to  Exactly_one  [x_a; x_b; ...]
                   At_most      ([x_a; ...], k)
                   Implies      (x_a, x_b)          (x_a = 1 -> x_b = 1) v}

    by depth-first branch-and-bound with:

    - {e unit propagation} over the three constraint forms after every
      branch (an [Exactly_one] group with a chosen member zeroes the
      rest; a saturated [At_most] zeroes its remaining free members; an
      implication chases both directions);
    - {e LP-style bounding}: at every node the incumbent is compared to
      the optimum of the rational relaxation of the remaining
      subproblem — free variables take their fractional optimum (1 for
      negative cost, 0 otherwise) and each unfulfilled [Exactly_one]
      group pays its cheapest free member when all its members cost
      money.  This is exactly the LP optimum of the relaxation with
      implications and [At_most] rows dropped, so it never exceeds the
      true integer optimum and the prune is safe;
    - {e deterministic tie-breaking}: variables are branched in index
      order, the locally-cheaper value is explored first, and a new
      incumbent must be {e strictly} better, so the solver returns the
      same assignment for the same problem on every run;
    - a {e node budget} instead of a wall clock: the analysis library is
      deterministic and unix-free, so "timeout" means "explored more
      than [node_budget] search nodes".  The caller (the plan selector)
      falls back to the greedy plan when the budget trips. *)

type var = int

type constr =
  | Exactly_one of var list  (** exactly one member is 1 *)
  | At_most of var list * int  (** at most [k] members are 1 *)
  | Implies of var * var  (** first = 1 forces second = 1 *)

type problem = {
  nvars : int;
  cost : float array;  (** [cost.(i)] multiplies [x_i]; may be negative *)
  constrs : constr list;
}

type stats = {
  vars : int;
  constraints : int;
  explored : int;  (** search nodes visited *)
  node_budget : int;
  timed_out : bool;  (** budget exhausted before the search closed *)
  root_bound : float;  (** rational-relaxation bound at the root *)
}

type solution = { assignment : bool array; objective : float; stats : stats }

let default_node_budget = 100_000

(* ------------------------------------------------------------------ *)
(* Partial assignments                                                 *)
(* ------------------------------------------------------------------ *)

(* -1 = free, 0 / 1 = fixed. *)
type state = int array

exception Infeasible

let set (st : state) (v : var) (value : int) : bool =
  (* returns true when the state changed; raises on conflict *)
  match st.(v) with
  | -1 ->
      st.(v) <- value;
      true
  | old when old = value -> false
  | _ -> raise Infeasible

(* One propagation sweep; returns true when anything changed. *)
let propagate_once (p : problem) (st : state) : bool =
  let changed = ref false in
  let fix v value = if set st v value then changed := true in
  List.iter
    (fun c ->
      match c with
      | Implies (a, b) ->
          if st.(a) = 1 then fix b 1;
          if st.(b) = 0 then fix a 0
      | Exactly_one vs ->
          let ones = List.filter (fun v -> st.(v) = 1) vs in
          let free = List.filter (fun v -> st.(v) = -1) vs in
          (match (ones, free) with
          | _ :: _ :: _, _ -> raise Infeasible
          | [ _ ], free -> List.iter (fun v -> fix v 0) free
          | [], [] -> raise Infeasible
          | [], [ only ] -> fix only 1
          | [], _ -> ())
      | At_most (vs, k) ->
          let ones = List.length (List.filter (fun v -> st.(v) = 1) vs) in
          if ones > k then raise Infeasible
          else if ones = k then
            List.iter (fun v -> if st.(v) = -1 then fix v 0) vs)
    p.constrs;
  !changed

let propagate (p : problem) (st : state) : unit =
  while propagate_once p st do
    ()
  done

(* ------------------------------------------------------------------ *)
(* Bounding                                                            *)
(* ------------------------------------------------------------------ *)

(** Optimum of the rational relaxation of the subproblem under partial
    assignment [st] (implications and [At_most] rows dropped — both can
    only raise the integer optimum, so this is a valid lower bound):
    fixed variables pay their cost, free variables take their fractional
    optimum, and an unfulfilled [Exactly_one] group whose free members
    all cost money pays the cheapest of them. *)
let relaxation_bound (p : problem) (st : state) : float =
  let base = ref 0.0 in
  for i = 0 to p.nvars - 1 do
    if st.(i) = 1 then base := !base +. p.cost.(i)
    else if st.(i) = -1 && p.cost.(i) < 0.0 then base := !base +. p.cost.(i)
  done;
  List.iter
    (fun c ->
      match c with
      | Exactly_one vs when not (List.exists (fun v -> st.(v) = 1) vs) ->
          let free = List.filter (fun v -> st.(v) = -1) vs in
          let cheapest =
            List.fold_left
              (fun acc v -> min acc p.cost.(v))
              infinity free
          in
          (* all-negative / mixed groups are already covered by the
             fractional term above; all-positive groups must pay *)
          if cheapest > 0.0 && cheapest < infinity then
            base := !base +. cheapest
      | _ -> ())
    p.constrs;
  !base

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let objective_of (p : problem) (st : state) : float =
  let o = ref 0.0 in
  for i = 0 to p.nvars - 1 do
    if st.(i) = 1 then o := !o +. p.cost.(i)
  done;
  !o

(** Is a {e complete} assignment consistent with every constraint?  Used
    as a final safety net on the incumbent the search returns. *)
let feasible (p : problem) (assignment : bool array) : bool =
  List.for_all
    (fun c ->
      match c with
      | Implies (a, b) -> (not assignment.(a)) || assignment.(b)
      | Exactly_one vs ->
          List.length (List.filter (fun v -> assignment.(v)) vs) = 1
      | At_most (vs, k) ->
          List.length (List.filter (fun v -> assignment.(v)) vs) <= k)
    p.constrs

let solve ?(node_budget = default_node_budget) (p : problem) : solution option =
  if Array.length p.cost <> p.nvars then
    invalid_arg "Ilp.solve: cost array length <> nvars";
  List.iter
    (fun c ->
      let check v =
        if v < 0 || v >= p.nvars then
          invalid_arg "Ilp.solve: constraint references unknown variable"
      in
      match c with
      | Exactly_one vs | At_most (vs, _) -> List.iter check vs
      | Implies (a, b) ->
          check a;
          check b)
    p.constrs;
  let explored = ref 0 in
  let timed_out = ref false in
  let best : (bool array * float) option ref = ref None in
  let root = Array.make p.nvars (-1) in
  let root_bound =
    try
      propagate p root;
      relaxation_bound p root
    with Infeasible -> infinity
  in
  let eps = 1e-9 in
  let rec dfs (st : state) : unit =
    if !timed_out then ()
    else begin
      incr explored;
      if !explored > node_budget then timed_out := true
      else begin
        let bound = relaxation_bound p st in
        let prune =
          match !best with
          | Some (_, inc) -> bound >= inc -. eps
          | None -> false
        in
        if not prune then begin
          (* first free variable, in index order: deterministic *)
          let rec first_free i =
            if i >= p.nvars then None
            else if st.(i) = -1 then Some i
            else first_free (i + 1)
          in
          match first_free 0 with
          | None ->
              let obj = objective_of p st in
              let better =
                match !best with
                | None -> true
                | Some (_, inc) -> obj < inc -. eps
              in
              if better then
                best := Some (Array.map (fun v -> v = 1) st, obj)
          | Some v ->
              (* locally-cheaper value first; ties take 0 first *)
              let order = if p.cost.(v) < 0.0 then [ 1; 0 ] else [ 0; 1 ] in
              List.iter
                (fun value ->
                  if not !timed_out then begin
                    let st' = Array.copy st in
                    match
                      ignore (set st' v value);
                      propagate p st';
                      `Ok
                    with
                    | `Ok -> dfs st'
                    | exception Infeasible -> ()
                  end)
                order
        end
      end
    end
  in
  (if root_bound < infinity then
     try dfs root with Infeasible -> ());
  let stats =
    { vars = p.nvars;
      constraints = List.length p.constrs;
      explored = !explored;
      node_budget;
      timed_out = !timed_out;
      root_bound;
    }
  in
  match !best with
  | Some (assignment, objective) when feasible p assignment ->
      Some { assignment; objective; stats }
  | _ -> None

(** The solution's solver provenance, for decision records and
    [--explain-plan]: budget-clean optima are ["ilp"], budget-tripped
    incumbents ["ilp-timeout"]. *)
let provenance (s : solution) : string =
  if s.stats.timed_out then "ilp-timeout" else "ilp"

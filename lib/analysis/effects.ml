(** Effect and purity analysis over DMLL IR.

    The whole optimizer rests on the component functions of a multiloop
    being pure: fusion inlines a producer's value function into several
    consumers (duplicating its evaluation), code motion hoists expressions
    across iterations, and the chunked runtime evaluates iterations in an
    unspecified order.  Any of those transformations is wrong for an
    expression with observable effects.

    In this IR the only effect carriers are externs: a non-whitelisted
    [Extern] may perform I/O or mutate the collections it receives
    (whitelisted externs are known-safe reads, e.g. size fields — paper
    §4.3).  Primitives are all pure ({!Dmll_ir.Prim.pure}), and the
    purely functional core (loops, lets, reads) cannot mutate anything.
    This module classifies expressions accordingly and, for the
    parallel-safety verifier's race check, over-approximates the set of
    collections an expression may {e write}: every collection-typed
    argument of a non-whitelisted extern. *)

open Dmll_ir
open Exp

(** One effectful program point: a non-whitelisted extern call. *)
type site = { ename : string; context : exp }

(** Every effectful site anywhere in [e], in program (pre-)order. *)
let effectful_sites (e : exp) : site list =
  List.rev
    (fold
       (fun acc n ->
         match n with
         | Extern { whitelisted = false; ename; _ } -> { ename; context = n } :: acc
         | _ -> acc)
       [] e)

(** Pure = re-evaluating zero or more times has no observable effect
    besides the value.  Agrees with {!Dmll_opt.Rewrite.pure}. *)
let pure (e : exp) : bool = effectful_sites e = []

let is_collection_ty = function Types.Arr _ | Types.Map _ -> true | _ -> false

(* The collection target named by [e], when [e] is a collection. *)
let collection_target (e : exp) : Stencil.target option =
  match e with
  | Var s when is_collection_ty (Sym.ty s) -> Some (Stencil.Tsym s)
  | Input (n, ty, _) when is_collection_ty ty -> Some (Stencil.Tinput n)
  | _ -> None

(** Collections that [e] may mutate: the collection-typed arguments of its
    non-whitelisted externs.  An over-approximation — an extern that only
    reads its argument is still reported — which is the right direction for
    a safety verifier. *)
let write_targets (e : exp) : Stencil.target list =
  fold
    (fun acc n ->
      match n with
      | Extern { whitelisted = false; eargs; _ } ->
          List.fold_left
            (fun acc a ->
              match collection_target a with
              | Some t when not (List.exists (Stencil.target_equal t) acc) -> t :: acc
              | _ -> acc)
            acc eargs
      | _ -> acc)
    [] e

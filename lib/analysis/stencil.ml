(** Read stencil analysis (paper §4.2).

    For every multiloop and every collection it reads, classify the range
    of the collection that one iteration of the loop may access:

    - [Interval]: iteration [i] reads element [i] (or row [i] of a
      flattened matrix).  The runtime partitions on these boundaries and
      every access is local.
    - [Interval_shifted c]: iteration [i] reads element [i + c] for a
      statically known constant [c] — a bounded halo (1-D convolution,
      CSR offset pairs).  Partitioning on interval boundaries keeps all
      but at most [|c|] border elements per chunk local, so the stencil
      stays local-friendly; the runtime exchanges only the halo.
    - [Const]: a fixed element; the runtime broadcasts it.
    - [All]: the whole collection per iteration; the runtime broadcasts the
      collection.
    - [Unknown]: a data-dependent index; the runtime must replicate or
      transfer at runtime — the trigger for the Figure-3 rewrites.

    Accesses are classified by affine analysis of the subscript with
    respect to the loop index ({!Linear}), including the row pattern
    [i*stride + j] where [j] is an inner loop index sweeping exactly
    [stride] elements. *)

open Dmll_ir
open Exp

type t =
  | Interval
  | Interval_shifted of int  (** [i + c]: a halo of width [|c|] *)
  | Const
  | All
  | Unknown

let to_string = function
  | Interval -> "Interval"
  | Interval_shifted c -> Printf.sprintf "Interval%+d" c
  | Const -> "Const"
  | All -> "All"
  | Unknown -> "Unknown"

let pp fmt s = Fmt.string fmt (to_string s)

(* Lattice: Const ⊑ Interval ⊑ Interval+c ⊑ All ⊑ Unknown; join = max.
   Two shifted stencils join to the wider halo (ties broken towards the
   positive offset so the join stays commutative and associative). *)
let rank = function
  | Const -> 0
  | Interval -> 1
  | Interval_shifted _ -> 2
  | All -> 3
  | Unknown -> 4

let join a b =
  match (a, b) with
  | Interval_shifted x, Interval_shifted y ->
      if abs x > abs y || (abs x = abs y && x >= y) then a else b
  | _ -> if rank a >= rank b then a else b

let join_all = List.fold_left join Const

(** Does partitioning the collection on this stencil avoid remote reads?
    A bounded halo qualifies: only [|c|] border elements per chunk cross
    the network, not the dataset. *)
let local_friendly = function
  | Interval | Interval_shifted _ | Const -> true
  | All | Unknown -> false

(** Halo width in elements: non-zero only for the shifted case. *)
let halo_width = function Interval_shifted c -> abs c | _ -> 0

(* ------------------------------------------------------------------ *)
(* Access collection                                                   *)
(* ------------------------------------------------------------------ *)

(** The "name" of a collection being read: a named input or a let-bound
    symbol. *)
type target = Tinput of string | Tsym of Sym.t

let target_equal a b =
  match (a, b) with
  | Tinput x, Tinput y -> String.equal x y
  | Tsym x, Tsym y -> Sym.equal x y
  | _ -> false

let target_to_string = function
  | Tinput n -> n
  | Tsym s -> Sym.to_string s

let target_of_exp = function
  | Input (n, _, _) -> Some (Tinput n)
  | Var s -> Some (Tsym s)
  | _ -> None

(* One raw access site: the subscript expression, plus the stack of loop
   indices (outermost first, starting with the analyzed loop's index) that
   enclose the site, with their sizes. *)
type site = { subscript : exp option; enclosing : (Sym.t * exp) list }
(* subscript = None encodes a whole-value use (bare Var / Len is excluded
   separately / MapRead with dynamic key). *)

let sites_of_loop (l : loop) : (target * site) list =
  let acc = ref [] in
  let note target site = acc := (target, site) :: !acc in
  let rec go (enclosing : (Sym.t * exp) list) (e : exp) : unit =
    match e with
    | Read (base, ix) -> (
        go enclosing ix;
        match target_of_exp base with
        | Some t -> note t { subscript = Some ix; enclosing }
        | None -> go enclosing base)
    | MapRead (base, k, d) -> (
        go enclosing k;
        Option.iter (go enclosing) d;
        match target_of_exp base with
        | Some t ->
            (* keyed access: data-dependent unless the key is loop-invariant *)
            note t { subscript = Some k; enclosing }
        | None -> go enclosing base)
    | KeyAt (base, ix) -> (
        go enclosing ix;
        match target_of_exp base with
        | Some t -> note t { subscript = Some ix; enclosing }
        | None -> go enclosing base)
    | Len _ ->
        (* length reads never touch element data (whitelisted, §4.3) *)
        ()
    | Var s when (match Sym.ty s with Types.Arr _ | Types.Map _ -> true | _ -> false) ->
        (* bare collection use outside Read/Len: conservatively a whole-value
           use *)
        note (Tsym s) { subscript = None; enclosing }
    | Input (n, (Types.Arr _ | Types.Map _), _) ->
        note (Tinput n) { subscript = None; enclosing }
    | Loop inner ->
        go enclosing inner.size;
        let enclosing' = enclosing @ [ (inner.idx, inner.size) ] in
        List.iter
          (fun g ->
            let parts =
              List.filter_map Fun.id [ gen_cond g; Some (gen_value g); gen_key g ]
            in
            let parts =
              match g with
              | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } ->
                  rfun :: init :: parts
              | _ -> parts
            in
            List.iter (go enclosing') parts)
          inner.gens
    | _ -> fold_sub (fun () sub -> go enclosing sub) () e
  in
  List.iter
    (fun g ->
      let parts = List.filter_map Fun.id [ gen_cond g; Some (gen_value g); gen_key g ] in
      let parts =
        match g with
        | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } ->
            rfun :: init :: parts
        | _ -> parts
      in
      List.iter (go [ (l.idx, l.size) ]) parts)
    l.gens;
  !acc

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* Classify one access site relative to the outermost index (the analyzed
   loop's index, which is the head of [enclosing]). *)
let classify_site (site : site) : t =
  match site.enclosing with
  | [] -> Const (* outside any loop — unreachable for loop sites *)
  | (i, _) :: inner -> (
      match site.subscript with
      | None -> All
      | Some ix -> (
          match Linear.in_index i ix with
          | None ->
              (* not affine in the loop index: data-dependent *)
              Unknown
          | Some (a, b) ->
              let inner_idxs = List.map fst inner in
              let b_inner =
                List.filter (fun j -> occurs j b) inner_idxs
              in
              if Linear.is_zero a then
                match b_inner with
                | [] -> Const
                | _ ->
                    (* subscription sweeps inner indices independent of i:
                       the loop touches a fixed region every iteration *)
                    if List.for_all (fun j -> Option.is_some (Linear.in_index j b)) b_inner
                    then All
                    else Unknown
              else if Linear.is_one a && b_inner = [] then (
                (* unit coefficient: i + b.  b = 0 is the pure interval;
                   a non-zero constant is a bounded halo; a symbolic
                   offset has no static width bound, so it is data
                   movement we cannot budget — Unknown (previously this
                   case was unsoundly classified Interval) *)
                match Linear.const_offset b with
                | Some 0 -> Interval
                | Some c -> Interval_shifted c
                | None -> Unknown)
              else
                (* row pattern: a*i + j with one inner index j of extent a *)
                match b_inner with
                | [ j ] -> (
                    match Linear.in_index j b with
                    | Some (cj, rest)
                      when Linear.is_one cj
                           && (not (List.exists (fun k -> occurs k rest) inner_idxs)) ->
                        let j_size =
                          List.assoc_opt j (List.map (fun (s, sz) -> (s, sz)) inner)
                        in
                        (match j_size with
                        | Some sz when Linear.coeff_equal sz a -> Interval
                        | _ -> Unknown)
                    | _ -> Unknown)
                | [] ->
                    (* strided access without a covering inner sweep *)
                    Unknown
                | _ -> Unknown))

(** Stencils of every collection read by one multiloop: the join over all
    of its access sites. *)
let of_loop (l : loop) : (target * t) list =
  let sites = sites_of_loop l in
  List.fold_left
    (fun acc (t, site) ->
      let s = classify_site site in
      match List.find_opt (fun (t', _) -> target_equal t t') acc with
      | Some (_, s0) ->
          (t, join s s0) :: List.filter (fun (t', _) -> not (target_equal t t')) acc
      | None -> (t, s) :: acc)
    [] sites

let lookup (t : target) (stencils : (target * t) list) : t option =
  Option.map snd (List.find_opt (fun (t', _) -> target_equal t t') stencils)

(* ------------------------------------------------------------------ *)
(* Program-level stencils                                              *)
(* ------------------------------------------------------------------ *)

(** Outermost multiloops of a program: loops not nested inside another
    loop.  These are the units the runtime partitions across machines. *)
let outer_loops (e : exp) : loop list =
  let acc = ref [] in
  let rec go e =
    match e with
    | Loop l -> acc := l :: !acc (* do not descend: inner loops belong to it *)
    | _ -> ignore (map_sub (fun s -> go s; s) e)
  in
  go e;
  List.rev !acc

(** Global stencil per collection: the conservative join over all outer
    loops that read it (paper §4.2: "we then compute a global stencil for
    each collection by conservatively joining its local stencils"). *)
let global (e : exp) : (target * t) list =
  List.fold_left
    (fun acc l ->
      List.fold_left
        (fun acc (t, s) ->
          match List.find_opt (fun (t', _) -> target_equal t t') acc with
          | Some (_, s0) ->
              (t, join s s0) :: List.filter (fun (t', _) -> not (target_equal t t')) acc
          | None -> (t, s) :: acc)
        acc (of_loop l))
    [] (outer_loops e)

(** Pairs of partitioned collections consumed by the same loop, which the
    runtime must co-partition (paper §4.2).  Each pair is reported once,
    regardless of orientation or how many loops consume it. *)
let co_partition_pairs (e : exp) ~(is_partitioned : target -> bool) :
    (target * target) list =
  let aligned = function Interval | Interval_shifted _ -> true | _ -> false in
  let pair_equal (a1, b1) (a2, b2) =
    (target_equal a1 a2 && target_equal b1 b2)
    || (target_equal a1 b2 && target_equal b1 a2)
  in
  let all =
    List.concat_map
      (fun l ->
        let ts =
          List.filter_map
            (fun (t, s) -> if is_partitioned t && aligned s then Some t else None)
            (of_loop l)
        in
        let rec pairs = function
          | [] | [ _ ] -> []
          | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
        in
        pairs ts)
      (outer_loops e)
  in
  List.fold_left
    (fun acc p -> if List.exists (pair_equal p) acc then acc else acc @ [ p ])
    [] all

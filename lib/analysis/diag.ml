(** Structured diagnostics for the static-analysis layer.

    Every analysis that can complain about a program — the parallel-safety
    verifier ({!Verify}), the partitioning analysis ({!Partition}), the
    debug-mode pass checks installed by the driver — produces values of
    this one type, so tooling ([dmllc --lint], the test suite, the
    fail-fast pass driver) can filter by severity and match on stable rule
    identifiers instead of scraping message strings.

    A diagnostic carries:
    - a {!severity} ([Error] means the program must not be run in parallel:
      the pipeline's debug mode fails fast on these);
    - a stable [rule] identifier (e.g. ["V-REDUCE-NONASSOC"]; the full
      catalogue is documented in DESIGN.md §8);
    - a human-readable message;
    - optionally the offending sub-expression, printed via {!Dmll_ir.Pp} in
      the paper's surface notation. *)

open Dmll_ir

type severity = Info | Warning | Error

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type t = {
  severity : severity;
  rule : string;  (** stable rule identifier, e.g. ["V-SCOPE-UNBOUND"] *)
  message : string;
  context : Exp.exp option;  (** offending sub-expression, when localized *)
}

(** Raised by fail-fast consumers (the debug-mode pass driver); [stage]
    names the pass or pipeline stage that produced the bad program. *)
exception Failed of { stage : string; diags : t list }

let make ?context severity ~rule fmt =
  Fmt.kstr (fun message -> { severity; rule; message; context }) fmt

let info ?context ~rule fmt = make ?context Info ~rule fmt
let warning ?context ~rule fmt = make ?context Warning ~rule fmt
let error ?context ~rule fmt = make ?context Error ~rule fmt

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

(** Does any diagnostic in [ds] carry rule id [rule]? *)
let has_rule ds rule = List.exists (fun d -> String.equal d.rule rule) ds

(** Most severe first; stable within one severity, so a rule's diagnostics
    keep program order. *)
let sort ds =
  List.stable_sort
    (fun a b -> Int.compare (severity_rank b.severity) (severity_rank a.severity))
    ds

(* Context expressions can be whole programs; print one line, truncated, so
   a lint report stays readable. *)
let context_snippet ?(limit = 120) (e : Exp.exp) : string =
  let s = Pp.to_string e in
  let s = String.map (function '\n' -> ' ' | c -> c) s in
  if String.length s <= limit then s else String.sub s 0 limit ^ " ..."

let pp fmt d =
  Fmt.pf fmt "%s[%s] %s" (severity_to_string d.severity) d.rule d.message

let pp_full fmt d =
  pp fmt d;
  match d.context with
  | Some e -> Fmt.pf fmt "@,    in: %s" (context_snippet e)
  | None -> ()

let to_string d = Fmt.str "%a" pp d

(** Drop diagnostics identical in (severity, rule, message) — nested loops
    can report the same underlying problem once per nesting level. *)
let dedup (ds : t list) : t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let k = (severity_rank d.severity, d.rule, d.message) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ds

(** Static communication-volume analysis (DESIGN.md §10).

    The partitioning analysis ({!Partition}, paper §4.2) decides {e
    whether} data moves; this module predicts {e how much}.  For every
    outer multiloop it derives a {b comm plan}: a list of transfer terms,
    each naming the kind of collective the runtime will issue and the
    payload whose bytes cross the wire.  The volume of a term is kept
    symbolic (a payload description) and resolved against a {!resolver} —
    either statically (declared element types, known or defaulted
    collection lengths) when the plan is an optimizer objective, or
    live (actual runtime values) when the plan is cross-validated against
    the cluster simulator's measured traffic.

    Term kinds mirror the phases the cluster executor charges
    ({!Dmll_runtime.Sim_cluster.loop_time}):

    - [Broadcast]: a [Local] collection consumed by a distributed loop is
      serialized once and sent to every node, and a partitioned
      collection with an [All] stencil is replicated the same way;
    - [Halo]: a partitioned collection read at [i + c] exchanges [|c|]
      border elements per chunk boundary — bounded, layout-preserving;
    - [Remote_read]: the §4.2 fallback — an [Unknown] stencil survived
      every rewrite, so in the worst case the whole collection crosses
      the network (element-granular fetches through {!Dist_array});
    - [Gather]: each node returns one reduction partial to the master;
    - [Shuffle]: bucket generators exchange per-node bucket tables.

    The prediction-vs-measurement contract: for every loop, measured
    simulator traffic must not exceed the resolved plan by more than
    {!slack} (checked under [DMLL_DEBUG=1], see {!check_measured}) —
    the static analysis is falsifiable against the runtime. *)

open Dmll_ir
open Exp
module M = Dmll_machine.Machine

(* ------------------------------------------------------------------ *)
(* The term language                                                   *)
(* ------------------------------------------------------------------ *)

type kind = Broadcast | Gather | Shuffle | Remote_read | Halo

let kind_to_string = function
  | Broadcast -> "broadcast"
  | Gather -> "gather"
  | Shuffle -> "shuffle"
  | Remote_read -> "remote-read"
  | Halo -> "halo"

(** What crosses the wire.  [Whole] and [Halo_of] are collection
    payloads; [Partials] is a per-node partial result (one reduction
    accumulator, or a bucket table when [init] is [None]). *)
type payload =
  | Whole of Stencil.target
  | Halo_of of { target : Stencil.target; width : int }
  | Partials of { gname : string; init : exp option }

type term = { kind : kind; payload : payload; note : string }

type loop_plan = {
  label : string;  (** binder name of the loop's result, or ["result"] *)
  distributed : bool;
      (** [false]: no partitioned input — the loop runs on the master
          alone and moves nothing *)
  terms : term list;
}

let target_of_term (t : term) : Stencil.target option =
  match t.payload with
  | Whole tg | Halo_of { target = tg; _ } -> Some tg
  | Partials _ -> None

(* ------------------------------------------------------------------ *)
(* Volume resolution                                                   *)
(* ------------------------------------------------------------------ *)

(** Byte size of each node's bucket table returned by a bucket generator
    — matches the cluster simulator's charge exactly. *)
let bucket_table_bytes = 4096.0

(** Fallback length for collections whose size the static analysis cannot
    resolve (an input with no registered length). *)
let default_collection_len = 65536

type resolver = {
  collection_bytes : Stencil.target -> float;
      (** the whole collection, serialized *)
  elem_bytes : Stencil.target -> float;
  init_bytes : exp -> float;  (** one reduction partial (the init's type) *)
}

(** Predicted bytes a partitioned collection with stencil [s] moves, per
    consuming loop.  This is the volume function the optimizer ranks
    rewrites with; it is monotone in the stencil lattice: coarser stencil,
    no less traffic. *)
let stencil_bytes ~(nodes : int) ~(elem_bytes : float)
    ~(collection_bytes : float) (s : Stencil.t) : float =
  match s with
  | Stencil.Const | Stencil.Interval -> 0.0
  | Stencil.Interval_shifted c ->
      Float.min
        (float_of_int (abs c * nodes) *. elem_bytes)
        collection_bytes
  | Stencil.All | Stencil.Unknown -> collection_bytes

let term_bytes ~(nodes : int) (r : resolver) (t : term) : float =
  match t.payload with
  | Whole tg -> r.collection_bytes tg
  | Halo_of { target; width } ->
      stencil_bytes ~nodes ~elem_bytes:(r.elem_bytes target)
        ~collection_bytes:(r.collection_bytes target)
        (Stencil.Interval_shifted width)
  | Partials { init = Some i; _ } -> r.init_bytes i *. float_of_int nodes
  | Partials { init = None; _ } -> bucket_table_bytes *. float_of_int nodes

(** Which simulator phase a term's bytes land in: a broadcast of a
    [Local] collection is the broadcast phase; every collection payload
    on a partitioned collection (replication, halo exchange, remote
    reads) lands in the replicate phase; partial returns are gathers. *)
let phase_of_term ~(layout_of : Stencil.target -> Exp.layout) (t : term) :
    [ `Broadcast | `Replicate | `Gather ] =
  match (t.kind, t.payload) with
  | Broadcast, Whole tg when layout_of tg = Exp.Local -> `Broadcast
  | (Broadcast | Remote_read | Halo), _ -> `Replicate
  | (Gather | Shuffle), _ -> `Gather

(** Resolved bytes of one plan restricted to a simulator phase. *)
let phase_bytes ~(nodes : int) ~(layout_of : Stencil.target -> Exp.layout)
    (r : resolver) (p : loop_plan)
    (phase : [ `Broadcast | `Replicate | `Gather ]) : float =
  List.fold_left
    (fun acc t ->
      if phase_of_term ~layout_of t = phase then acc +. term_bytes ~nodes r t
      else acc)
    0.0 p.terms

(* ------------------------------------------------------------------ *)
(* Plan derivation                                                     *)
(* ------------------------------------------------------------------ *)

(* The comm term (if any) for one partitioned collection, from its
   stencil.  Const costs nothing (a single element, amortized into the
   loop-launch control message, as the simulator models it); Interval is
   the paper's happy path — aligned partitions, zero movement. *)
let partitioned_term (tg : Stencil.target) (s : Stencil.t) : term option =
  match s with
  | Stencil.Const | Stencil.Interval -> None
  | Stencil.Interval_shifted c ->
      Some
        { kind = Halo;
          payload = Halo_of { target = tg; width = abs c };
          note = Printf.sprintf "bounded halo, offset %+d" c;
        }
  | Stencil.All ->
      Some
        { kind = Broadcast;
          payload = Whole tg;
          note = "replicate: All stencil (every iteration sweeps it)";
        }
  | Stencil.Unknown ->
      Some
        { kind = Remote_read;
          payload = Whole tg;
          note = "fallback: data-dependent subscript (worst case)";
        }

let gen_term (g : gen) : term option =
  match g with
  | Collect _ -> None (* output stays partitioned in place *)
  | Reduce { init; _ } ->
      Some
        { kind = Gather;
          payload = Partials { gname = "reduce"; init = Some init };
          note = "one partial per node";
        }
  | BucketCollect _ ->
      Some
        { kind = Shuffle;
          payload = Partials { gname = "bucketCollect"; init = None };
          note = "per-node bucket tables";
        }
  | BucketReduce _ ->
      Some
        { kind = Shuffle;
          payload = Partials { gname = "bucketReduce"; init = None };
          note = "per-node bucket tables";
        }

(** The comm plan of one outer multiloop under the given layouts. *)
let of_loop ~(layout_of : Stencil.target -> Exp.layout) ?(label = "loop")
    (l : loop) : loop_plan =
  (* only collections free in the loop cross the network; symbols bound
     inside it (combiner parameters, per-iteration temporaries) are
     node-local by construction *)
  let free = free_vars (Loop l) in
  let stencils =
    List.filter
      (fun (t, _) ->
        match t with
        | Stencil.Tsym s -> Sym.Set.mem s free
        | Stencil.Tinput _ -> true)
      (Stencil.of_loop l)
  in
  let distributed =
    List.exists (fun (t, _) -> layout_of t = Exp.Partitioned) stencils
  in
  if not distributed then { label; distributed = false; terms = [] }
  else
    let input_terms =
      List.filter_map
        (fun (t, s) ->
          if layout_of t = Exp.Partitioned then partitioned_term t s
          else
            (* the simulator serializes every Local collection the loop
               consumes, whatever its stencil *)
            Some
              { kind = Broadcast;
                payload = Whole t;
                note = "local collection consumed by a distributed loop";
              })
        stencils
    in
    let result_terms = List.filter_map gen_term l.gens in
    { label; distributed = true; terms = input_terms @ result_terms }

(* Outer loops with the binder that names their result, for readable
   plans ([Stencil.outer_loops] finds the same loops, unlabeled). *)
let labeled_outer_loops (e : exp) : (string * loop) list =
  let acc = ref [] in
  let rec go label e =
    match e with
    | Loop l -> acc := (label, l) :: !acc
    | Let (s, rhs, body) ->
        go (Sym.name s) rhs;
        go "result" body
    | _ ->
        ignore
          (map_sub
             (fun sub ->
               go "result" sub;
               sub)
             e)
  in
  go "result" e;
  List.rev !acc

(** Per-loop comm plans of a whole program. *)
let of_program ~(layout_of : Stencil.target -> Exp.layout) (e : exp) :
    loop_plan list =
  List.map (fun (label, l) -> of_loop ~layout_of ~label l) (labeled_outer_loops e)

(* ------------------------------------------------------------------ *)
(* Static resolution                                                   *)
(* ------------------------------------------------------------------ *)

(* Integer evaluation of size expressions against known input lengths and
   spine-derived symbol lengths. *)
let rec eval_len ~(input_lens : (string * int) list)
    ~(sym_lens : int Sym.Map.t) (e : exp) : int option =
  let ev = eval_len ~input_lens ~sym_lens in
  match e with
  | Const (Cint n) -> Some n
  | Len (Input (n, _, _)) -> List.assoc_opt n input_lens
  | Len (Var s) -> Sym.Map.find_opt s sym_lens
  | Prim (Prim.Add, [ a; b ]) -> (
      match (ev a, ev b) with Some x, Some y -> Some (x + y) | _ -> None)
  | Prim (Prim.Sub, [ a; b ]) -> (
      match (ev a, ev b) with Some x, Some y -> Some (x - y) | _ -> None)
  | Prim (Prim.Mul, [ a; b ]) -> (
      match (ev a, ev b) with Some x, Some y -> Some (x * y) | _ -> None)
  | Prim (Prim.Div, [ a; b ]) -> (
      match (ev a, ev b) with
      | Some x, Some y when y <> 0 -> Some (x / y)
      | _ -> None)
  | _ -> None

(* Walk the let-spine accumulating element counts for collection-valued
   symbols: input aliases and single-collect loop results (a conditional
   collect's size is an upper bound, which is the right direction for a
   "measured <= predicted" contract). *)
let spine_lens ~(input_lens : (string * int) list) (e : exp) : int Sym.Map.t =
  let rec spine env e =
    match e with
    | Let (s, rhs, body) ->
        let env =
          match rhs with
          | Input (n, (Types.Arr _ | Types.Map _), _) -> (
              match List.assoc_opt n input_lens with
              | Some n -> Sym.Map.add s n env
              | None -> env)
          | Var s' -> (
              match Sym.Map.find_opt s' env with
              | Some n -> Sym.Map.add s n env
              | None -> env)
          | Loop { size; gens = [ Collect _ ]; _ } -> (
              match eval_len ~input_lens ~sym_lens:env size with
              | Some n -> Sym.Map.add s n env
              | None -> env)
          | _ -> env
        in
        spine env body
    | _ -> env
  in
  spine Sym.Map.empty e

(* Element wire size from declared types.  Map entries carry key and
   value; nested collections degrade to the pointer size of the static
   type (the live resolver measures them exactly). *)
let static_elem_bytes (inputs_ty : (string * Types.ty) list)
    (t : Stencil.target) : float =
  let ty =
    match t with
    | Stencil.Tinput n -> List.assoc_opt n inputs_ty
    | Stencil.Tsym s -> Some (Sym.ty s)
  in
  match ty with
  | Some (Types.Arr t) -> float_of_int (Types.byte_size t)
  | Some (Types.Map (k, v)) ->
      float_of_int (Types.byte_size k + Types.byte_size v)
  | _ -> 8.0

let program_input_tys (e : exp) : (string * Types.ty) list =
  let tbl = Hashtbl.create 8 in
  ignore
    (fold
       (fun () n ->
         match n with
         | Input (name, ty, _) -> Hashtbl.replace tbl name ty
         | _ -> ())
       () e);
  Hashtbl.fold (fun n t acc -> (n, t) :: acc) tbl []

(* Static bytes of one reduction partial: a single-collect init (the
   vectorized accumulators Column-to-Row builds) is its element count
   times the element size; anything else is the byte size of its static
   type. *)
let static_init_bytes ~(input_lens : (string * int) list)
    ~(sym_lens : int Sym.Map.t) (init : exp) : float =
  match init with
  | Loop { size; gens = [ Collect _ ]; _ } -> (
      match eval_len ~input_lens ~sym_lens size with
      | Some n -> 8.0 *. float_of_int n
      | None -> 64.0)
  | _ -> (
      let ty =
        try
          Some
            (Typecheck.infer
               (Sym.Set.fold
                  (fun s acc -> Sym.Map.add s (Sym.ty s) acc)
                  (free_vars init) Sym.Map.empty)
               init)
        with Typecheck.Type_error _ -> None
      in
      match ty with
      | Some t -> float_of_int (Types.byte_size t)
      | None -> 8.0)

(** A resolver from static program information alone: declared element
    types, registered input lengths ([input_lens], element counts), and
    [default_len] for everything unresolved.  This is what the optimizer
    ranks candidate programs with — no runtime values involved. *)
let static_resolver ?(input_lens = []) ?(default_len = default_collection_len)
    (e : exp) : resolver =
  let inputs_ty = program_input_tys e in
  let sym_lens = spine_lens ~input_lens e in
  let len (t : Stencil.target) : float =
    let n =
      match t with
      | Stencil.Tinput n -> List.assoc_opt n input_lens
      | Stencil.Tsym s -> Sym.Map.find_opt s sym_lens
    in
    float_of_int (match n with Some n -> n | None -> default_len)
  in
  let elem = static_elem_bytes inputs_ty in
  { collection_bytes = (fun t -> len t *. elem t);
    elem_bytes = elem;
    init_bytes = static_init_bytes ~input_lens ~sym_lens;
  }

(* ------------------------------------------------------------------ *)
(* Program summary                                                     *)
(* ------------------------------------------------------------------ *)

type summary = {
  nodes : int;
  loops : (loop_plan * (term * float) list) list;
      (** each plan with its terms resolved to bytes *)
  per_collection : (Stencil.target * float) list;
      (** total predicted bytes per collection, over all loops *)
  partials_bytes : float;  (** gather + shuffle volume (no collection) *)
  total_bytes : float;
  link_gbs : float;  (** the machine's per-link bandwidth, for display *)
  est_seconds : float;  (** total volume over one link's bandwidth *)
}

(** Resolve every loop plan of [e] and total the volumes. *)
let summarize ?input_lens ?default_len ?(machine = M.ec2_cluster)
    ~(layout_of : Stencil.target -> Exp.layout) (e : exp) : summary =
  let r = static_resolver ?input_lens ?default_len e in
  let nodes = machine.M.nodes in
  let loops =
    List.map
      (fun p -> (p, List.map (fun t -> (t, term_bytes ~nodes r t)) p.terms))
      (of_program ~layout_of e)
  in
  let per_collection =
    List.fold_left
      (fun acc (_, resolved) ->
        List.fold_left
          (fun acc (t, b) ->
            match target_of_term t with
            | None -> acc
            | Some tg -> (
                match
                  List.find_opt (fun (tg', _) -> Stencil.target_equal tg tg') acc
                with
                | Some (_, b0) ->
                    (tg, b0 +. b)
                    :: List.filter
                         (fun (tg', _) -> not (Stencil.target_equal tg tg'))
                         acc
                | None -> acc @ [ (tg, b) ]))
          acc resolved)
      [] loops
  in
  let partials_bytes =
    List.fold_left
      (fun acc (_, resolved) ->
        List.fold_left
          (fun acc (t, b) ->
            match target_of_term t with None -> acc +. b | Some _ -> acc)
          acc resolved)
      0.0 loops
  in
  let total_bytes =
    List.fold_left
      (fun acc (_, resolved) ->
        List.fold_left (fun acc (_, b) -> acc +. b) acc resolved)
      0.0 loops
  in
  { nodes;
    loops;
    per_collection;
    partials_bytes;
    total_bytes;
    link_gbs = machine.M.net_bw_gbs;
    est_seconds = total_bytes /. M.net_bytes_per_sec machine;
  }

(** Total predicted communication volume of a program, in bytes — the
    scalar objective the optimizer compares candidate programs by. *)
let static_total ?input_lens ?default_len ?machine
    ~(layout_of : Stencil.target -> Exp.layout) (e : exp) : float =
  (summarize ?input_lens ?default_len ?machine ~layout_of e).total_bytes

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let payload_formula (t : term) : string =
  match t.payload with
  | Whole tg -> Printf.sprintf "|%s| * elem" (Stencil.target_to_string tg)
  | Halo_of { target; width } ->
      Printf.sprintf "min(%d * nodes * elem, |%s| * elem)" width
        (Stencil.target_to_string target)
  | Partials { gname; init = Some _ } ->
      Printf.sprintf "sizeof(%s init) * nodes" gname
  | Partials { gname; init = None } ->
      Printf.sprintf "%.0fB table * nodes (%s)" bucket_table_bytes gname

let fmt_bytes (b : float) : string =
  if b >= 1048576.0 then Printf.sprintf "%.1fMB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1fKB" (b /. 1024.0)
  else Printf.sprintf "%.0fB" b

let pp_summary fmt (s : summary) =
  Fmt.pf fmt "comm plan (%d nodes):@." s.nodes;
  List.iter
    (fun ((p : loop_plan), resolved) ->
      if not p.distributed then
        Fmt.pf fmt "  %-12s master-only: no traffic@." p.label
      else if resolved = [] then
        Fmt.pf fmt "  %-12s distributed: perfectly partitioned, no traffic@."
          p.label
      else begin
        Fmt.pf fmt "  %-12s distributed:@." p.label;
        List.iter
          (fun ((t : term), b) ->
            Fmt.pf fmt "    %-12s %-10s %-42s ~%s  (%s)@." (kind_to_string t.kind)
              (match target_of_term t with
              | Some tg -> Stencil.target_to_string tg
              | None -> "-")
              (payload_formula t) (fmt_bytes b) t.note)
          resolved
      end)
    s.loops;
  Fmt.pf fmt "  per-collection totals:@.";
  List.iter
    (fun (tg, b) ->
      Fmt.pf fmt "    %-24s %s@." (Stencil.target_to_string tg) (fmt_bytes b))
    s.per_collection;
  if s.partials_bytes > 0.0 then
    Fmt.pf fmt "    %-24s %s@." "(reduction partials)" (fmt_bytes s.partials_bytes);
  Fmt.pf fmt "  total: %s (~%.2gs on one %g GB/s link)@." (fmt_bytes s.total_bytes)
    s.est_seconds s.link_gbs

(* Minimal JSON escaping: the strings we emit are identifiers and fixed
   notes, but stay safe anyway. *)
let json_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let summary_to_json (s : summary) : string =
  let term_json ((t : term), b) =
    Printf.sprintf
      "{\"kind\":\"%s\",\"target\":%s,\"formula\":\"%s\",\"bytes\":%.0f,\"note\":\"%s\"}"
      (kind_to_string t.kind)
      (match target_of_term t with
      | Some tg -> Printf.sprintf "\"%s\"" (json_escape (Stencil.target_to_string tg))
      | None -> "null")
      (json_escape (payload_formula t))
      b (json_escape t.note)
  in
  let loop_json ((p : loop_plan), resolved) =
    Printf.sprintf "{\"loop\":\"%s\",\"distributed\":%b,\"terms\":[%s]}"
      (json_escape p.label) p.distributed
      (String.concat "," (List.map term_json resolved))
  in
  let coll_json (tg, b) =
    Printf.sprintf "{\"collection\":\"%s\",\"bytes\":%.0f}"
      (json_escape (Stencil.target_to_string tg))
      b
  in
  Printf.sprintf
    "{\"nodes\":%d,\"loops\":[%s],\"per_collection\":[%s],\"partials_bytes\":%.0f,\"total_bytes\":%.0f,\"est_seconds\":%.6g}"
    s.nodes
    (String.concat "," (List.map loop_json s.loops))
    (String.concat "," (List.map coll_json s.per_collection))
    s.partials_bytes s.total_bytes s.est_seconds

(* ------------------------------------------------------------------ *)
(* Prediction-vs-measurement contract                                  *)
(* ------------------------------------------------------------------ *)

(** Is runtime cross-validation armed?  Off by default; [Dmll.Config]
    arms it alongside the rest of the debug-mode checks (the only env-var
    reader is [Dmll.Config.of_env], which maps [DMLL_DEBUG=1] here at
    startup); tests flip it directly. *)
let validate_enabled = ref false

(** Multiplicative slack of the contract: serialization framing, the Ga
    per-element boxing overhead the static type sizes cannot see, and
    rounding of chunk boundaries. *)
let slack = 1.5

(** Additive floor, so empty payloads with fixed-size control messages
    never trip the check. *)
let slack_floor_bytes = 4096.0

(** Assert [measured <= slack * predicted + floor].  Raises
    {!Diag.Failed} with rule [C-COMM-OVERRUN] otherwise: the plan missed
    a transfer the runtime actually performs. *)
let check_measured ~(site : string) ~(phase : string) ~(predicted : float)
    ~(measured : float) : unit =
  if measured > (slack *. predicted) +. slack_floor_bytes then
    raise
      (Diag.Failed
         { stage = site;
           diags =
             [ Diag.error ~rule:"C-COMM-OVERRUN"
                 "%s: measured %s exceeds predicted %s (slack %.2fx + %.0fB): \
                  the comm plan is missing a transfer"
                 phase (fmt_bytes measured) (fmt_bytes predicted) slack
                 slack_floor_bytes;
             ];
         })

(** Parallel-safety verifier: the DMLL IR lint.

    The compiler's licence to recompose a multiloop's component functions
    per target — and the runtime's licence to evaluate iterations in
    chunks, in any order — rests on invariants that {!Dmll_ir.Typecheck}
    does not see: components must be pure, reductions associative, binders
    globally unique, and no iteration may read a collection another
    iteration writes.  A transformation bug that violates one of these
    produces a program that still type checks but silently diverges under
    parallel execution.  This pass re-establishes the invariants after
    every optimization (in the driver's debug mode) and on demand via
    [dmllc --lint].

    Rules (stable ids; catalogue also in DESIGN.md §8):

    {b Well-formedness}
    - [V-SCOPE-UNBOUND] (error): use of a symbol with no enclosing binder —
      e.g. a loop index escaping its multiloop.
    - [V-SCOPE-REBOUND] (error): a symbol bound at two program points,
      violating the global-uniqueness invariant {!Dmll_ir.Sym} guarantees
      and every substitution-based rewrite relies on.
    - [V-LOOP-EMPTY] (error): multiloop with no generators.
    - [V-LOOP-INDEX-IN-SIZE] (error): a loop's size expression mentions its
      own index.
    - [V-ACC-SHARED] (error): a reduction's two accumulator binders are the
      same symbol.

    {b Effects} (see {!Effects})
    - [V-EFFECT-COMPONENT] (error): a non-whitelisted extern inside a
      generator component (condition, key, value, reduction, init): fusion
      duplicates components into multiple consumers and code motion
      reorders them, so effects there are unsound.
    - [V-EFFECT-SIZE] (error): effectful loop size.

    {b Reduction soundness}
    - [V-REDUCE-NONASSOC] (error): the reduction function is a recognized
      {e non-associative} operation (sub, div, ...): chunked execution
      changes the result.
    - [V-REDUCE-IDX] (error): the reduction function depends on the loop
      index — a cross-iteration dependence, since the reduction tree's
      shape is unspecified.
    - [V-REDUCE-UNKNOWN] (warning): unrecognized reduction shape;
      associativity cannot be verified.
    - [V-REDUCE-FLOAT] (warning): float reduction — reassociation under
      chunking perturbs low-order bits (determinism warning).
    - [V-REDUCE-INIT] (warning): the init element is a constant that is not
      the identity of the recognized reduction, so folding the init into
      every chunk (as the chunked runtime does) changes the result.

    {b Cross-iteration dependence}
    - [V-RACE-READ-WRITE] (error): a multiloop reads a collection it may
      also write (via an effectful extern argument) — a race under chunked
      execution.  Read sets come from {!Stencil}; write sets from
      {!Effects.write_targets}. *)

open Dmll_ir
open Exp

(** The rule catalogue: (id, worst severity, one-line description).  Kept
    in code so [dmllc --lint --rules], the docs, and the tests stay in
    sync. *)
let rules : (string * Diag.severity * string) list =
  [ ("V-SCOPE-UNBOUND", Diag.Error, "use of a symbol with no enclosing binder");
    ("V-SCOPE-REBOUND", Diag.Error, "symbol bound at two program points");
    ("V-LOOP-EMPTY", Diag.Error, "multiloop with no generators");
    ("V-LOOP-INDEX-IN-SIZE", Diag.Error, "loop size mentions the loop's own index");
    ("V-ACC-SHARED", Diag.Error, "reduction accumulators are the same symbol");
    ("V-EFFECT-COMPONENT", Diag.Error, "effectful extern inside a generator component");
    ("V-EFFECT-SIZE", Diag.Error, "effectful loop size");
    ("V-REDUCE-NONASSOC", Diag.Error, "non-associative reduction function");
    ("V-REDUCE-IDX", Diag.Error, "reduction function depends on the loop index");
    ("V-REDUCE-UNKNOWN", Diag.Warning, "unrecognized reduction shape");
    ("V-REDUCE-FLOAT", Diag.Warning, "float reduction: reassociation is non-deterministic");
    ("V-REDUCE-INIT", Diag.Warning, "reduce init is not the reduction's identity");
    ("V-RACE-READ-WRITE", Diag.Error, "loop reads a collection it may write");
  ]

let rule_ids = List.map (fun (id, _, _) -> id) rules

(* ------------------------------------------------------------------ *)
(* Reduction-shape recognition                                          *)
(* ------------------------------------------------------------------ *)

type reducer_shape =
  | Assoc of { prim : Prim.t option; float_reassoc : bool }
      (** recognized associative (and commutative) shape; [prim] is the
          top-level operation when there is a single one (for the identity
          check) *)
  | NonAssoc of Prim.t  (** recognized, and definitely not associative *)
  | Unrecognized

let assoc_prim =
  Prim.(
    function
    | Add | Mul | Min | Max | Fadd | Fmul | Fmin | Fmax | And | Or -> true
    | _ -> false)

let nonassoc_prim =
  Prim.(function Sub | Fsub | Div | Fdiv | Mod | Pow -> true | _ -> false)

let float_reassoc_prim = Prim.(function Fadd | Fmul -> true | _ -> false)

(** Identity element of a recognized associative prim, when it has a
    representable one ([Min]/[Max] over unbounded ints do not). *)
let identity_of =
  Prim.(
    function
    | Add -> Some (int_ 0)
    | Mul -> Some (int_ 1)
    | Fadd -> Some (float_ 0.0)
    | Fmul -> Some (float_ 1.0)
    | Fmin -> Some (float_ infinity)
    | Fmax -> Some (float_ neg_infinity)
    | And -> Some (bool_ true)
    | Or -> Some (bool_ false)
    | _ -> None)

(** Classify a reduction function whose two operands are [opa] and [opb]
    (initially the accumulator variables; recursion refines them to
    projections for componentwise tuples and to element reads for the
    vectorized reductions introduced by Column-to-Row). *)
let rec classify_rfun ~(opa : exp) ~(opb : exp) (rfun : exp) : reducer_shape =
  let is_a e = alpha_equal e opa and is_b e = alpha_equal e opb in
  match rfun with
  | Prim (p, [ x; y ]) when (is_a x && is_b y) || (is_a y && is_b x) ->
      if assoc_prim p then Assoc { prim = Some p; float_reassoc = float_reassoc_prim p }
      else if nonassoc_prim p then NonAssoc p
      else Unrecognized
  | Tuple es ->
      (* componentwise reduction over a tuple of accumulators *)
      let shapes =
        List.mapi
          (fun k ek -> classify_rfun ~opa:(Proj (opa, k)) ~opb:(Proj (opb, k)) ek)
          es
      in
      if es = [] then Unrecognized
      else begin
        match List.find_opt (function NonAssoc _ -> true | _ -> false) shapes with
        | Some (NonAssoc p) -> NonAssoc p
        | _ ->
            if List.exists (function Unrecognized -> true | _ -> false) shapes then
              Unrecognized
            else
              Assoc
                { prim = None;
                  float_reassoc =
                    List.exists
                      (function Assoc { float_reassoc = f; _ } -> f | _ -> false)
                      shapes;
                }
      end
  | If (Prim ((Prim.Lt | Prim.Le | Prim.Gt | Prim.Ge), [ kx; ky ]), tx, ty)
    when (is_a tx && is_b ty) || (is_b tx && is_a ty) ->
      (* min-by / max-by selection (the argmin pattern of k-means/kNN):
         associative when both keys are the same function of each operand *)
      let swap e =
        let rec sw e =
          if alpha_equal e opa then opb
          else if alpha_equal e opb then opa
          else map_sub sw e
        in
        sw e
      in
      if alpha_equal (swap kx) ky then Assoc { prim = None; float_reassoc = false }
      else Unrecognized
  | Loop { size; idx; gens = [ Collect { cond = None; value } ] }
    when alpha_equal size (Len opa) || alpha_equal size (Len opb) ->
      (* elementwise lift (zipWith r): the vector reduction produced by
         Column-to-Row — associative iff the scalar reduction is *)
      classify_rfun ~opa:(Read (opa, Var idx)) ~opb:(Read (opb, Var idx)) value
  | _ -> Unrecognized

(* ------------------------------------------------------------------ *)
(* The checking traversal                                               *)
(* ------------------------------------------------------------------ *)

type state = { mutable diags : Diag.t list; seen : unit Sym.Tbl.t }

let add st d = st.diags <- d :: st.diags

(* Record a binder; complains when the symbol was already bound somewhere
   else in the program. *)
let bind st (context : exp) (scope : Sym.Set.t) (s : Sym.t) : Sym.Set.t =
  if Sym.Tbl.mem st.seen s then
    add st
      (Diag.error ~context ~rule:"V-SCOPE-REBOUND"
         "symbol %a is bound at more than one program point" Sym.pp s)
  else Sym.Tbl.replace st.seen s ();
  Sym.Set.add s scope

let rec go st (scope : Sym.Set.t) (e : exp) : unit =
  match e with
  | Var s ->
      if not (Sym.Set.mem s scope) then
        add st
          (Diag.error ~context:e ~rule:"V-SCOPE-UNBOUND"
             "use of unbound symbol %a (a loop index or accumulator escaping its binder?)"
             Sym.pp s)
  | Const _ | Input _ -> ()
  | Let (s, a, b) ->
      go st scope a;
      let scope = bind st e scope s in
      go st scope b
  | Loop l -> check_loop st scope l
  | _ -> fold_sub (fun () sub -> go st scope sub) () e

and check_loop st (scope : Sym.Set.t) (l : loop) : unit =
  let loop_e = Loop l in
  if l.gens = [] then
    add st
      (Diag.error ~context:loop_e ~rule:"V-LOOP-EMPTY" "multiloop %a has no generators"
         Sym.pp l.idx);
  if occurs l.idx l.size then
    add st
      (Diag.error ~context:l.size ~rule:"V-LOOP-INDEX-IN-SIZE"
         "size of multiloop %a mentions its own index" Sym.pp l.idx);
  List.iter
    (fun (s : Effects.site) ->
      add st
        (Diag.error ~context:s.Effects.context ~rule:"V-EFFECT-SIZE"
           "effectful extern %S in the size of multiloop %a" s.Effects.ename Sym.pp
           l.idx))
    (Effects.effectful_sites l.size);
  let scope_idx = bind st loop_e scope l.idx in
  go st scope_idx l.size;
  List.iter (check_gen st ~scope ~scope_idx l) l.gens;
  race_check st l

and check_gen st ~scope ~scope_idx (l : loop) (g : gen) : unit =
  let gname = gen_name g in
  (* scope-check one component and flag effectful externs inside it *)
  let part ~name ~sc e =
    go st sc e;
    List.iter
      (fun (s : Effects.site) ->
        add st
          (Diag.error ~context:s.Effects.context ~rule:"V-EFFECT-COMPONENT"
             "effectful extern %S in the %s of a %s generator (multiloop %a): fusion and code motion may duplicate or reorder it"
             s.Effects.ename name gname Sym.pp l.idx))
      (Effects.effectful_sites e)
  in
  Option.iter (part ~name:"condition" ~sc:scope_idx) (gen_cond g);
  Option.iter (part ~name:"key" ~sc:scope_idx) (gen_key g);
  part ~name:"value" ~sc:scope_idx (gen_value g);
  match g with
  | Collect _ | BucketCollect _ -> ()
  | Reduce { a; b; rfun; init; _ } | BucketReduce { a; b; rfun; init; _ } ->
      let sc_acc =
        if Sym.equal a b then begin
          add st
            (Diag.error ~context:rfun ~rule:"V-ACC-SHARED"
               "reduction of multiloop %a uses the same symbol %a for both accumulators"
               Sym.pp l.idx Sym.pp a);
          bind st (Loop l) scope_idx a
        end
        else bind st (Loop l) (bind st (Loop l) scope_idx a) b
      in
      part ~name:"reduction function" ~sc:sc_acc rfun;
      if occurs l.idx rfun then
        add st
          (Diag.error ~context:rfun ~rule:"V-REDUCE-IDX"
             "reduction function of multiloop %a depends on the loop index %a: cross-iteration dependence"
             Sym.pp l.idx Sym.pp l.idx);
      (* the identity element is evaluated outside the loop body *)
      part ~name:"init" ~sc:scope init;
      reduce_checks st ~gname ~idx:l.idx ~a ~b ~rfun ~init

and reduce_checks st ~gname ~idx ~a ~b ~rfun ~init : unit =
  match classify_rfun ~opa:(Var a) ~opb:(Var b) rfun with
  | NonAssoc p ->
      add st
        (Diag.error ~context:rfun ~rule:"V-REDUCE-NONASSOC"
           "%s of multiloop %a reduces with non-associative %s: chunked execution changes the result"
           gname Sym.pp idx (Prim.name p))
  | Unrecognized ->
      add st
        (Diag.warning ~context:rfun ~rule:"V-REDUCE-UNKNOWN"
           "unrecognized reduction shape in %s of multiloop %a: associativity cannot be verified"
           gname Sym.pp idx)
  | Assoc { prim; float_reassoc } -> (
      if float_reassoc then
        add st
          (Diag.warning ~context:rfun ~rule:"V-REDUCE-FLOAT"
             "float reduction in %s of multiloop %a: chunked reassociation may perturb low-order bits"
             gname Sym.pp idx);
      match prim with
      | Some p -> (
          match (identity_of p, init) with
          | Some id, Const _ when not (alpha_equal init id) ->
              add st
                (Diag.warning ~context:init ~rule:"V-REDUCE-INIT"
                   "init %s is not the identity of %s: chunked execution folds the init into every chunk"
                   (Pp.to_string init) (Prim.name p))
          | _ -> ())
      | None -> ())

and race_check st (l : loop) : unit =
  let reads = List.map fst (Stencil.of_loop l) in
  let parts =
    List.concat_map
      (fun g ->
        let ps = List.filter_map Fun.id [ gen_cond g; Some (gen_value g); gen_key g ] in
        match g with
        | Reduce { rfun; init; _ } | BucketReduce { rfun; init; _ } -> rfun :: init :: ps
        | _ -> ps)
      l.gens
  in
  let writes = List.concat_map Effects.write_targets parts in
  List.iter
    (fun t ->
      if List.exists (Stencil.target_equal t) reads then
        add st
          (Diag.error ~context:(Loop l) ~rule:"V-RACE-READ-WRITE"
             "multiloop %a reads collection %s that it may also write: race under chunked execution"
             Sym.pp l.idx
             (Stencil.target_to_string t)))
    writes

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

(** Run every rule over [e].  [declared] names symbols that are legally
    free (used when verifying open program fragments, e.g. the per-rule
    checks of the debug-mode pass driver); a closed program needs none. *)
let run ?(declared = Sym.Set.empty) (e : exp) : Diag.t list =
  let st = { diags = []; seen = Sym.Tbl.create 64 } in
  go st declared e;
  Diag.dedup (List.rev st.diags)

(** Fail-fast entry for the debug-mode pass driver: raises {!Diag.Failed}
    carrying the Error-severity diagnostics, if any. *)
let check_exn ?declared ~(stage : string) (e : exp) : unit =
  let diags = run ?declared e in
  if Diag.has_errors diags then
    raise (Diag.Failed { stage; diags = Diag.errors diags })

(** Global plan-space analysis with ILP-selected joint decisions.

    The greedy searches ({!Partition.analyze}'s per-iteration rewrite
    pick, {!Dmll_opt.Fusion.horizontal_with}'s per-candidate veto)
    commit to Figure-3 stencil rewrites, horizontal fusions, and
    partition layouts one decision at a time, so they cannot see that an
    individually-worse rewrite can unlock a fusion that wins globally.
    This module makes the joint decision instead:

    + {b Enumerate} the legal plan space of a program —
      - {e rewrite configurations}: bounded-depth branching over the
        stencil-triggered Figure-3 rules (every applicable rule at every
        step, not just the locally-cheapest), deduplicated up to alpha
        equivalence and capped;
      - {e fusion candidates} per configuration: adjacent independent
        multiloop pairs from a pairwise interference graph (size
        equality, purity from the effects analysis, no dependence edge),
        each materialized with the unconditional horizontal-fusion rule;
      - {e partition-layout candidates} per configuration: partitioned
        inputs whose global stencil replicates anyway ([All]/[Unknown])
        may be demoted to [Local], provided every distributed loop keeps
        at least one partitioned source — the co-partition layouts the
        propagation derives are attached to each candidate via its
        materialized program.
    + {b Cost} every candidate symbolically: the {!Comm} plan terms of
      its materialized program (total predicted bytes), plus a {!Mem}
      residency penalty when the configuration's predicted peak exceeds
      the per-node budget — budget-infeasible combinations stay legal
      but pay for their overshoot.
    + {b Select} the cost-minimal consistent assignment with a 0-1 ILP
      ({!Ilp}): one variable per configuration (exactly-one), per fusion
      candidate and per demotion (implication into their configuration,
      at-most-one per shared loop, coverage constraints for demotions).
    + {b Guard}: the selected plan is re-verified with the PR 1 verifier
      under debug ({!Dmll_opt.Pipeline.run_check}), and compared against
      the end-to-end greedy plan on the {e true} (materialized)
      objective — on a solver timeout, an infeasible encoding, or a
      greedy tie/win, the greedy plan is kept and the decision records
      say so ([provenance]).

    The ILP estimate treats fusion/demotion deltas as additive; the
    final comparison never does — it re-prices the materialized program,
    so an estimate error can only cost an improvement, never a
    regression past greedy. *)

open Dmll_ir
open Exp
module R = Dmll_opt.Rewrite
module Fusion = Dmll_opt.Fusion
module Pipeline = Dmll_opt.Pipeline
module M = Dmll_machine.Machine
module Span = Dmll_obs.Span

(** Which plan selector a compile uses ({!Dmll.Config.plan_selector}):
    the historical greedy searches, or this module's global ILP.  (The
    [Ilp] constructor and the {!Ilp} solver module live in different
    namespaces; no shadowing.) *)
type selector = Greedy | Ilp

(* ------------------------------------------------------------------ *)
(* Costing                                                             *)
(* ------------------------------------------------------------------ *)

(** Weight of the memory-residency penalty, in objective bytes per byte
    of predicted peak overshoot: infeasible combinations stay in the
    space but must buy their overshoot back fourfold in saved traffic
    before they can win. *)
let mem_penalty_weight = 4.0

let volume ?input_lens ~machine e =
  Partition.predicted_volume ?input_lens ~machine e

(* (peak bytes, penalty bytes) of [e] under its own propagated layouts. *)
let mem_cost ?input_lens ~machine ?budget_gb (e : exp) : float * float =
  let layouts, _ = Partition.propagate e in
  let layout_of t = Partition.layout_of t layouts in
  let s = Mem.summarize ?input_lens ~machine ?budget_gb ~layout_of e in
  let over = Float.max 0.0 (s.Mem.peak_bytes -. s.Mem.budget_bytes) in
  (s.Mem.peak_bytes, mem_penalty_weight *. over)

(* Post-materialization cleanup: the shared-memory pipeline with
   horizontal fusion removed — the planner owns that decision. *)
let reoptimize (e : exp) : exp =
  (Pipeline.optimize_with ~horizontal_fusion:false e).Pipeline.program

(* ------------------------------------------------------------------ *)
(* Plan space                                                          *)
(* ------------------------------------------------------------------ *)

type fusion_candidate = {
  label : string;  (** ["fuse:<s1>+<s2>"] *)
  s1 : Sym.t;  (** result binder of the upper loop *)
  s2 : Sym.t;  (** result binder of the lower loop *)
  fused_program : exp;  (** configuration program with only this fusion *)
  delta_bytes : float;  (** volume change vs. the configuration *)
  delta_penalty : float;  (** residency-penalty change *)
}

type demotion_candidate = {
  dlabel : string;  (** ["local:<input>"] *)
  input : string;
  demoted_program : exp;
  ddelta_bytes : float;
  ddelta_penalty : float;
}

type rewrite_config = {
  cid : int;
  rewrites : string list;  (** Figure-3 rule names, application order *)
  program : exp;
  base_bytes : float;
  mem_peak_bytes : float;
  mem_penalty : float;
  fusions : fusion_candidate list;
  demotions : demotion_candidate list;
  demotion_groups : (int list * int) list;
      (** per-loop coverage constraints, as (demotion indexes, max) *)
}

type space = {
  configs : rewrite_config list;  (** [cid 0] is always "keep" *)
  truncated : bool;  (** the enumeration hit a cap *)
}

let config_label (c : rewrite_config) : string =
  match c.rewrites with [] -> "keep" | rs -> String.concat "+" rs

let max_depth = 8
let max_configs = 24

(* Branch the stencil-triggered rewrite search to bounded depth: from
   each program with non-local-friendly accesses, apply every applicable
   Figure-3 rule (one sweep, then cleanup — exactly what one greedy
   iteration does) and recurse.  Programs are deduplicated up to alpha
   equivalence; the greedy descent is a path in this tree, so the ILP's
   space contains every plan the greedy search can reach within the
   depth bound. *)
let enumerate_rewrites ~(transforms : R.rule list) (e0 : exp) :
    (string list * exp) list * bool =
  let seen : (string list * exp) list ref = ref [] in
  let truncated = ref false in
  let try_add rewrites prog =
    if List.exists (fun (_, p) -> alpha_equal p prog) !seen then false
    else if List.length !seen >= max_configs then begin
      truncated := true;
      false
    end
    else begin
      seen := !seen @ [ (rewrites, prog) ];
      true
    end
  in
  let rec go rewrites prog depth =
    if depth < max_depth then begin
      let layouts, _ = Partition.propagate prog in
      if Partition.bad_accesses prog layouts <> [] then
        List.iter
          (fun (rule : R.rule) ->
            let trace = R.new_trace () in
            let prog' = R.sweep [ rule ] trace prog in
            if trace.R.applied <> [] then begin
              Pipeline.run_check ("plan-rule:" ^ rule.R.rname) prog';
              let prog' = reoptimize prog' in
              let rewrites' = rewrites @ [ rule.R.rname ] in
              if try_add rewrites' prog' then go rewrites' prog' (depth + 1)
            end)
          transforms
    end
  in
  ignore (try_add [] e0);
  go [] e0 0;
  (!seen, !truncated)

(* Adjacent multiloop pairs along the let-spine: the nodes of the
   interference graph.  [let_float] (part of every cleanup pipeline)
   has already floated non-loop bindings upward, so independent loops
   sit adjacent when they can. *)
let rec spine_pairs (e : exp) : ((Sym.t * loop) * (Sym.t * loop)) list =
  match e with
  | Let (s1, Loop l1, (Let (s2, Loop l2, _) as rest)) ->
      ((s1, l1), (s2, l2)) :: spine_pairs rest
  | Let (_, _, body) -> spine_pairs body
  | _ -> []

(** No interference edge between two adjacent loops: alpha-equal pure
    sizes, both bodies pure (effects analysis — impure loops may not be
    merged or reordered), no dependence of the lower loop on the upper
    loop's result, and no write-target overlap (vacuous for pure loops,
    load-bearing for whitelisted externs). *)
let fusible ((s1, l1) : Sym.t * loop) ((_, l2) : Sym.t * loop) : bool =
  alpha_equal l1.size l2.size
  && R.pure l1.size
  && Effects.pure (Loop l1)
  && Effects.pure (Loop l2)
  && (not (Sym.Set.mem s1 (free_vars (Loop l2))))
  && List.for_all
       (fun t ->
         not (List.exists (Stencil.target_equal t) (Effects.write_targets (Loop l2))))
       (Effects.write_targets (Loop l1))

(* Apply the unconditional horizontal-fusion rule to exactly the
   [Let (s1, Loop _, Let (s2, Loop _, _))] node named by the pair. *)
let materialize_fusion ~(s1 : Sym.t) ~(s2 : Sym.t) (e : exp) : exp option =
  Fusion.replace_first
    (fun t ->
      match t with
      | Let (a, Loop _, Let (b, Loop _, _))
        when Sym.equal a s1 && Sym.equal b s2 ->
          Fusion.horizontal.R.apply t
      | _ -> None)
    e

(* Rewrite every [Input (input, _, Partitioned)] to [Local]. *)
let demote_input ~(input : string) (e : exp) : exp =
  let rec go e =
    match e with
    | Input (n, ty, Partitioned) when String.equal n input ->
        Input (n, ty, Local)
    | _ -> map_sub go e
  in
  go e

(* A materialized candidate must still pass the parallel-safety
   verifier: an Error-severity finding disqualifies it from the space
   (legality, not cost). *)
let legal (e : exp) : bool =
  not (Diag.has_errors (Verify.run ~declared:(Exp.free_vars e) e))

(* Fusion candidates of one configuration program. *)
let fusion_candidates ~vol ~pen (prog : exp) ~(base_bytes : float)
    ~(base_penalty : float) : fusion_candidate list =
  List.filter_map
    (fun ((s1, _l1), (s2, _l2)) ->
      match materialize_fusion ~s1 ~s2 prog with
      | None -> None
      | Some fused ->
          let fused = reoptimize fused in
          if not (legal fused) then None
          else
            Some
              { label =
                  Printf.sprintf "fuse:%s+%s" (Sym.name s1) (Sym.name s2);
                s1;
                s2;
                fused_program = fused;
                delta_bytes = vol fused -. base_bytes;
                delta_penalty = pen fused -. base_penalty;
              })
    (List.filter (fun (a, b) -> fusible a b) (spine_pairs prog))

(* Demotion candidates of one configuration program, plus the per-loop
   coverage constraints keeping every distributed loop distributed. *)
let demotion_candidates ~vol ~pen (prog : exp) ~(base_bytes : float)
    ~(base_penalty : float) : demotion_candidate list * (int list * int) list
    =
  let layouts, _ = Partition.propagate prog in
  let layout_of t = Partition.layout_of t layouts in
  let eligible =
    List.filter_map
      (fun (t, s) ->
        match t with
        | Stencil.Tinput n
          when layout_of t = Partitioned && not (Stencil.local_friendly s) ->
            Some n
        | _ -> None)
      (Stencil.global prog)
  in
  let eligible = List.sort_uniq String.compare eligible in
  let cands =
    List.filter_map
      (fun input ->
        let demoted = reoptimize (demote_input ~input prog) in
        if not (legal demoted) then None
        else
          Some
            { dlabel = "local:" ^ input;
              input;
              demoted_program = demoted;
              ddelta_bytes = vol demoted -. base_bytes;
              ddelta_penalty = pen demoted -. base_penalty;
            })
      eligible
  in
  (* for every outer loop reading partitioned sources, at most
     (sources - 1) of its demotable inputs may go Local *)
  let groups =
    List.filter_map
      (fun l ->
        let sources =
          List.filter
            (fun t -> layout_of t = Partitioned)
            (Partition.loop_reads l)
        in
        let demotable =
          List.mapi (fun i c -> (i, c)) cands
          |> List.filter_map (fun (i, (c : demotion_candidate)) ->
                 if
                   List.exists
                     (fun t ->
                       Stencil.target_equal t (Stencil.Tinput c.input))
                     sources
                 then Some i
                 else None)
        in
        let n_sources = List.length sources in
        if n_sources > 0 && List.length demotable >= n_sources then
          Some (demotable, n_sources - 1)
        else None)
      (Stencil.outer_loops prog)
  in
  (cands, groups)

(** Enumerate the full plan space of [e]. *)
let enumerate ?(transforms = Dmll_opt.Rules_nested.cpu_rules) ?input_lens
    ?(machine = M.ec2_cluster) ?budget_gb (e : exp) : space =
  let vol p = volume ?input_lens ~machine p in
  let pen p = snd (mem_cost ?input_lens ~machine ?budget_gb p) in
  let programs, truncated = enumerate_rewrites ~transforms e in
  let configs =
    List.mapi
      (fun cid (rewrites, prog) ->
        let base_bytes = vol prog in
        let mem_peak_bytes, mem_penalty =
          mem_cost ?input_lens ~machine ?budget_gb prog
        in
        let fusions =
          fusion_candidates ~vol ~pen prog ~base_bytes
            ~base_penalty:mem_penalty
        in
        let demotions, demotion_groups =
          demotion_candidates ~vol ~pen prog ~base_bytes
            ~base_penalty:mem_penalty
        in
        { cid;
          rewrites;
          program = prog;
          base_bytes;
          mem_peak_bytes;
          mem_penalty;
          fusions;
          demotions;
          demotion_groups;
        })
      programs
  in
  { configs; truncated }

(* ------------------------------------------------------------------ *)
(* ILP encoding                                                        *)
(* ------------------------------------------------------------------ *)

type var_meta =
  | Vconfig of int  (** configuration index *)
  | Vfusion of int * int  (** (configuration, fusion index) *)
  | Vdemote of int * int  (** (configuration, demotion index) *)

let encode (s : space) : Ilp.problem * var_meta array =
  let metas = ref [] in
  let costs = ref [] in
  let constrs = ref [] in
  let n = ref 0 in
  let add meta cost =
    let v = !n in
    incr n;
    metas := meta :: !metas;
    costs := cost :: !costs;
    v
  in
  let config_vars =
    List.map
      (fun c -> add (Vconfig c.cid) (c.base_bytes +. c.mem_penalty))
      s.configs
  in
  constrs := [ Ilp.Exactly_one config_vars ];
  List.iteri
    (fun ci (c : rewrite_config) ->
      let yc = List.nth config_vars ci in
      let fusion_vars =
        List.mapi
          (fun fi (f : fusion_candidate) ->
            let v = add (Vfusion (ci, fi)) (f.delta_bytes +. f.delta_penalty) in
            constrs := Ilp.Implies (v, yc) :: !constrs;
            (v, f))
          c.fusions
      in
      (* at most one fusion per shared loop: adjacent candidates share
         their middle loop *)
      List.iteri
        (fun i (v1, (f1 : fusion_candidate)) ->
          List.iteri
            (fun j (v2, (f2 : fusion_candidate)) ->
              if
                i < j
                && (Sym.equal f1.s2 f2.s1 || Sym.equal f1.s1 f2.s1
                  || Sym.equal f1.s2 f2.s2)
              then constrs := Ilp.At_most ([ v1; v2 ], 1) :: !constrs)
            fusion_vars)
        fusion_vars;
      let demote_vars =
        List.mapi
          (fun di (d : demotion_candidate) ->
            let v =
              add (Vdemote (ci, di)) (d.ddelta_bytes +. d.ddelta_penalty)
            in
            constrs := Ilp.Implies (v, yc) :: !constrs;
            v)
          c.demotions
      in
      List.iter
        (fun (idxs, k) ->
          let vs = List.map (fun i -> List.nth demote_vars i) idxs in
          constrs := Ilp.At_most (vs, k) :: !constrs)
        c.demotion_groups)
    s.configs;
  let nvars = !n in
  let cost = Array.of_list (List.rev !costs) in
  let metas = Array.of_list (List.rev !metas) in
  ({ Ilp.nvars; cost; constrs = List.rev !constrs }, metas)

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

(** One end-to-end plan: the materialized program and how it was put
    together.  [predicted_bytes] is the true {!Comm} volume of
    [program]; [objective] the ILP estimate that selected it (identical
    to [predicted_bytes] plus penalties when the estimate was exact). *)
type choice = {
  plabel : string;
  program : exp;
  predicted_bytes : float;
  objective : float;
  rewrites : string list;
  fused : string list;
  demoted : string list;
}

type explain = {
  nodes : int;
  provenance : string;
      (** ["ilp"], ["ilp-tie:greedy"], or ["ilp-fallback:greedy"] *)
  chosen : choice;
  greedy : choice;
  ilp : choice option;  (** [None] when no round produced a solution *)
  space : space;  (** the last round's enumerated space *)
  stats : Ilp.stats option;  (** the last solve's statistics *)
  rounds : int;
}

type result = { report : Partition.report; explain : explain }

let max_rounds = 3
let eps = 1e-6

(* Decode a solved assignment against the space. *)
let decode (s : space) (metas : var_meta array) (assignment : bool array) :
    rewrite_config * fusion_candidate list * demotion_candidate list =
  let config = ref (List.hd s.configs) in
  let fusions = ref [] in
  let demotions = ref [] in
  Array.iteri
    (fun v set ->
      if set then
        match metas.(v) with
        | Vconfig ci -> config := List.nth s.configs ci
        | Vfusion (ci, fi) ->
            fusions := (ci, List.nth (List.nth s.configs ci).fusions fi) :: !fusions
        | Vdemote (ci, di) ->
            demotions :=
              (ci, List.nth (List.nth s.configs ci).demotions di) :: !demotions)
    assignment;
  let c = !config in
  (* implications guarantee selected fusions/demotions belong to the
     selected configuration; filter defensively anyway *)
  ( c,
    List.rev_map snd (List.filter (fun (ci, _) -> ci = c.cid) !fusions),
    List.rev_map snd (List.filter (fun (ci, _) -> ci = c.cid) !demotions) )

(* Materialize one assignment: apply the selected fusions (spine order
   is preserved; disjoint pairs do not disturb each other), then the
   demotions, then clean up. *)
let materialize (c : rewrite_config) (fs : fusion_candidate list)
    (ds : demotion_candidate list) : exp =
  let prog =
    List.fold_left
      (fun acc (f : fusion_candidate) ->
        match materialize_fusion ~s1:f.s1 ~s2:f.s2 acc with
        | Some p -> p
        | None -> acc)
      c.program fs
  in
  let prog =
    List.fold_left
      (fun acc (d : demotion_candidate) -> demote_input ~input:d.input acc)
      prog ds
  in
  reoptimize prog

(** Run the global plan selection on a generically-optimized program
    (horizontal fusion deferred).  Returns a {!Partition.report} whose
    [decisions] carry solver provenance, plus the full {!explain}
    record behind [dmllc --explain-plan].

    The greedy baseline is computed end-to-end (pipeline fusion with the
    threaded comm veto, then {!Partition.analyze}); the ILP plan must
    beat it on the true materialized objective or the greedy plan is
    kept ([provenance = "ilp-tie:greedy"] on a tie,
    ["ilp-fallback:greedy"] on a solver timeout/failure or estimate
    shortfall). *)
let analyze ?tracer ?(transforms = Dmll_opt.Rules_nested.cpu_rules)
    ?input_lens ?(machine = M.ec2_cluster) ?budget_gb
    ?(node_budget = Ilp.default_node_budget) (e : exp) : result =
  let vol p = volume ?input_lens ~machine p in
  let fusion_objective p = vol p in
  (* ---- greedy baseline, end to end ---- *)
  let greedy_generic =
    (Pipeline.optimize_with ~fusion_objective e).Pipeline.program
  in
  let greedy_rep =
    Partition.analyze ~transforms ~fusion_objective ?input_lens ~machine
      greedy_generic
  in
  let greedy_prog = greedy_rep.Partition.program in
  let greedy_bytes = vol greedy_prog in
  let greedy_choice =
    { plabel = "greedy";
      program = greedy_prog;
      predicted_bytes = greedy_bytes;
      objective = greedy_bytes;
      rewrites = greedy_rep.Partition.rewrites_applied;
      fused = [];
      demoted = [];
    }
  in
  (* ---- ILP rounds: enumerate, solve, materialize; iterate so chained
     fusions (pairs that only become adjacent after a first merge) are
     reachable ---- *)
  let timed_out = ref false in
  let solver_failed = ref false in
  let last_space = ref (enumerate ~transforms ?input_lens ~machine ?budget_gb e)
  in
  let last_stats = ref None in
  let rec rounds round prog acc_rewrites acc_fused acc_demoted obj =
    if round >= max_rounds then (round, prog, acc_rewrites, acc_fused, acc_demoted, obj)
    else begin
      let s =
        if round = 0 then !last_space
        else enumerate ~transforms ?input_lens ~machine ?budget_gb prog
      in
      last_space := s;
      let problem, metas = encode s in
      match Ilp.solve ~node_budget problem with
      | None ->
          solver_failed := true;
          (round, prog, acc_rewrites, acc_fused, acc_demoted, obj)
      | Some sol ->
          last_stats := Some sol.Ilp.stats;
          if sol.Ilp.stats.Ilp.timed_out then timed_out := true;
          let c, fs, ds = decode s metas sol.Ilp.assignment in
          if c.rewrites = [] && fs = [] && ds = [] then
            (round + 1, prog, acc_rewrites, acc_fused, acc_demoted, obj)
          else begin
            let prog' = materialize c fs ds in
            (* re-verify the selected plan (PR 1 verifier under debug) *)
            Pipeline.run_check "plan:selected" prog';
            let v' = vol prog' in
            if v' < vol prog -. eps then
              rounds (round + 1) prog'
                (acc_rewrites @ c.rewrites)
                (acc_fused @ List.map (fun f -> f.label) fs)
                (acc_demoted @ List.map (fun d -> d.dlabel) ds)
                sol.Ilp.objective
            else (round + 1, prog, acc_rewrites, acc_fused, acc_demoted, obj)
          end
    end
  in
  let base_bytes = vol e in
  let n_rounds, ilp_prog, ilp_rewrites, ilp_fused, ilp_demoted, ilp_obj =
    rounds 0 e [] [] [] base_bytes
  in
  let ilp_bytes = vol ilp_prog in
  let ilp_label =
    match ilp_rewrites @ ilp_fused @ ilp_demoted with
    | [] -> "keep"
    | parts -> String.concat "+" parts
  in
  let ilp_choice =
    if !solver_failed && n_rounds = 0 then None
    else
      Some
        { plabel = ilp_label;
          program = ilp_prog;
          predicted_bytes = ilp_bytes;
          objective = ilp_obj;
          rewrites = ilp_rewrites;
          fused = ilp_fused;
          demoted = ilp_demoted;
        }
  in
  (* ---- final guard: the true objective decides ---- *)
  let provenance, chosen =
    match ilp_choice with
    | None -> ("ilp-fallback:greedy", greedy_choice)
    | Some ilp ->
        if !timed_out || !solver_failed then
          ("ilp-fallback:greedy", greedy_choice)
        else if ilp.predicted_bytes < greedy_bytes -. eps then ("ilp", ilp)
        else if ilp.predicted_bytes <= greedy_bytes +. eps then
          ("ilp-tie:greedy", greedy_choice)
        else ("ilp-fallback:greedy", greedy_choice)
  in
  (* ---- decision record with chosen-vs-rejected assignments ---- *)
  let alternatives =
    let config_alts =
      List.map
        (fun c -> (config_label c, c.base_bytes))
        (!last_space).configs
    in
    let named = [ ("greedy", greedy_bytes) ] in
    let ilp_alt =
      match ilp_choice with
      | Some ilp when ilp.plabel <> "keep" ->
          [ (ilp.plabel, ilp.predicted_bytes) ]
      | _ -> []
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (n, _) ->
        if Hashtbl.mem seen n then false
        else begin
          Hashtbl.add seen n ();
          true
        end)
      (named @ ilp_alt @ config_alts)
  in
  let decision =
    { Partition.iteration = 0;
      chosen = (if chosen == greedy_choice then "greedy" else chosen.plabel);
      candidates = alternatives;
      provenance;
    }
  in
  (match tracer with
  | None -> ()
  | Some tr ->
      Span.emit tr ~cat:"partition" ~name:"plan-decision"
        ~args:
          ([ ("provenance", Span.Str provenance);
             ("chosen", Span.Str decision.Partition.chosen);
             ("bytes:chosen", Span.Float chosen.predicted_bytes);
             ("bytes:greedy", Span.Float greedy_bytes);
             ("rounds", Span.Int n_rounds);
           ]
          @
          match !last_stats with
          | None -> []
          | Some st ->
              [ ("solver:explored", Span.Int st.Ilp.explored);
                ("solver:vars", Span.Int st.Ilp.vars);
              ])
        ~ts_us:(Span.now_us tr) ~dur_us:0.0 ());
  let report =
    if chosen == greedy_choice then
      { greedy_rep with
        Partition.decisions = greedy_rep.Partition.decisions @ [ decision ];
      }
    else
      Partition.finalize
        ~rewrites_applied:(chosen.rewrites @ chosen.fused @ chosen.demoted)
        ~decisions:[ decision ] chosen.program
  in
  { report;
    explain =
      { nodes = machine.M.nodes;
        provenance;
        chosen;
        greedy = greedy_choice;
        ilp = ilp_choice;
        space = !last_space;
        stats = !last_stats;
        rounds = n_rounds;
      };
  }

(* ------------------------------------------------------------------ *)
(* W-FUSION-MISSED lint                                                *)
(* ------------------------------------------------------------------ *)

(** Warn when the interference graph proves two adjacent multiloops
    fusible but the final program leaves them unfused with a strictly
    worse predicted volume — the selected plan (or the shared-memory
    pipeline) left traffic on the table.  Surfaces in [dmllc --lint]. *)
let fusion_missed_diags ?input_lens ?(machine = M.ec2_cluster) (e : exp) :
    Diag.t list =
  let vol p = volume ?input_lens ~machine p in
  let base = vol e in
  List.filter_map
    (fun ((s1, _), (s2, _)) ->
      match materialize_fusion ~s1 ~s2 e with
      | None -> None
      | Some fused ->
          let fused = reoptimize fused in
          let v = vol fused in
          if legal fused && v < base -. eps then
            Some
              (Diag.warning ~rule:"W-FUSION-MISSED"
                 "multiloops %s and %s are fusible but unfused: fusing would \
                  cut predicted traffic %s -> %s"
                 (Sym.name s1) (Sym.name s2) (Comm.fmt_bytes base)
                 (Comm.fmt_bytes v))
          else None)
    (List.filter (fun (a, b) -> fusible a b) (spine_pairs e))

(* ------------------------------------------------------------------ *)
(* Rendering ([dmllc --explain-plan])                                  *)
(* ------------------------------------------------------------------ *)

let str_list_json (ss : string list) : string =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ Comm.json_escape s ^ "\"") ss)
  ^ "]"

let choice_to_json (c : choice) : string =
  Printf.sprintf
    "{\"label\":\"%s\",\"predicted_bytes\":%.0f,\"objective\":%.0f,\"rewrites\":%s,\"fusions\":%s,\"demotions\":%s}"
    (Comm.json_escape c.plabel)
    c.predicted_bytes c.objective (str_list_json c.rewrites)
    (str_list_json c.fused) (str_list_json c.demoted)

let config_to_json (c : rewrite_config) : string =
  Printf.sprintf
    "{\"label\":\"%s\",\"rewrites\":%s,\"base_bytes\":%.0f,\"mem_peak_bytes\":%.0f,\"mem_penalty\":%.0f,\"fusions\":[%s],\"demotions\":[%s]}"
    (Comm.json_escape (config_label c))
    (str_list_json c.rewrites) c.base_bytes c.mem_peak_bytes c.mem_penalty
    (String.concat ","
       (List.map
          (fun (f : fusion_candidate) ->
            Printf.sprintf "{\"label\":\"%s\",\"delta_bytes\":%.0f}"
              (Comm.json_escape f.label) f.delta_bytes)
          c.fusions))
    (String.concat ","
       (List.map
          (fun (d : demotion_candidate) ->
            Printf.sprintf "{\"label\":\"%s\",\"delta_bytes\":%.0f}"
              (Comm.json_escape d.dlabel) d.ddelta_bytes)
          c.demotions))

let stats_to_json (st : Ilp.stats) : string =
  Printf.sprintf
    "{\"vars\":%d,\"constraints\":%d,\"explored\":%d,\"node_budget\":%d,\"timed_out\":%b,\"root_bound\":%.0f}"
    st.Ilp.vars st.Ilp.constraints st.Ilp.explored st.Ilp.node_budget
    st.Ilp.timed_out st.Ilp.root_bound

(** One application's complete [--explain-plan --json] object (schema is
    golden-tested — downstream tooling relies on the field names). *)
let explain_to_json ~(app : string) (x : explain) : string =
  Printf.sprintf
    "{\"app\":\"%s\",\"nodes\":%d,\"provenance\":\"%s\",\"rounds\":%d,\"chosen\":%s,\"greedy\":%s,\"ilp\":%s,\"solver\":%s,\"space\":{\"truncated\":%b,\"configs\":[%s]}}"
    (Comm.json_escape app) x.nodes
    (Comm.json_escape x.provenance)
    x.rounds
    (choice_to_json x.chosen)
    (choice_to_json x.greedy)
    (match x.ilp with None -> "null" | Some c -> choice_to_json c)
    (match x.stats with None -> "null" | Some st -> stats_to_json st)
    x.space.truncated
    (String.concat "," (List.map config_to_json x.space.configs))

let pp_explain (fmt : Format.formatter) (x : explain) : unit =
  let pp = Format.fprintf in
  pp fmt "plan selection (%d nodes): %s@." x.nodes x.provenance;
  pp fmt "  chosen: %s  predicted %s@." x.chosen.plabel
    (Comm.fmt_bytes x.chosen.predicted_bytes);
  pp fmt "  greedy: %s (%s)  predicted %s@." x.greedy.plabel
    (String.concat "+"
       (match x.greedy.rewrites with [] -> [ "keep" ] | rs -> rs))
    (Comm.fmt_bytes x.greedy.predicted_bytes);
  (match x.ilp with
  | None -> pp fmt "  ilp: no solution@."
  | Some c ->
      pp fmt "  ilp: %s  predicted %s (objective %s, %d round%s)@." c.plabel
        (Comm.fmt_bytes c.predicted_bytes)
        (Comm.fmt_bytes c.objective) x.rounds
        (if x.rounds = 1 then "" else "s"));
  (match x.stats with
  | None -> ()
  | Some st ->
      pp fmt "  solver: %d vars, %d constraints, %d nodes explored%s@."
        st.Ilp.vars st.Ilp.constraints st.Ilp.explored
        (if st.Ilp.timed_out then " (node budget exhausted)" else ""));
  pp fmt "  space:%s %d configuration%s@."
    (if x.space.truncated then " (truncated)" else "")
    (List.length x.space.configs)
    (if List.length x.space.configs = 1 then "" else "s");
  List.iter
    (fun c ->
      pp fmt "    [%d] %s: %s%s@." c.cid (config_label c)
        (Comm.fmt_bytes c.base_bytes)
        (if c.mem_penalty > 0.0 then
           Printf.sprintf " (+%s mem penalty)" (Comm.fmt_bytes c.mem_penalty)
         else "");
      List.iter
        (fun (f : fusion_candidate) ->
          pp fmt "          %s: %+.0fB@." f.label f.delta_bytes)
        c.fusions;
      List.iter
        (fun (d : demotion_candidate) ->
          pp fmt "          %s: %+.0fB@." d.dlabel d.ddelta_bytes)
        c.demotions)
    x.space.configs

(** Affine (linear) form extraction for integer index expressions.

    The read-stencil analysis classifies array subscripts by their affine
    structure with respect to a loop index (paper §4.2: "standard affine
    analysis").  Coefficients are symbolic expressions — a matrix row
    access is [i * cols + j] where [cols] is a runtime value — so the form
    of an expression [e] with respect to index [i] is a pair [(a, b)] of
    expressions free of [i] with [e = a*i + b]. *)

open Dmll_ir
open Exp
open Builder

(** [in_index i e] is [Some (a, b)] with [e = a*i + b] and [a], [b] free of
    [i]; [None] if [e] is not affine in [i]. *)
let rec in_index (i : Sym.t) (e : exp) : (exp * exp) option =
  if not (occurs i e) then Some (int_ 0, e)
  else
    match e with
    | Var s when Sym.equal s i -> Some (int_ 1, int_ 0)
    | Prim (Prim.Add, [ x; y ]) -> (
        match (in_index i x, in_index i y) with
        | Some (a1, b1), Some (a2, b2) -> Some (simp (a1 +! a2), simp (b1 +! b2))
        | _ -> None)
    | Prim (Prim.Sub, [ x; y ]) -> (
        match (in_index i x, in_index i y) with
        | Some (a1, b1), Some (a2, b2) -> Some (simp (a1 -! a2), simp (b1 -! b2))
        | _ -> None)
    | Prim (Prim.Mul, [ x; y ]) -> (
        (* linear only if one side is free of i *)
        match (occurs i x, occurs i y) with
        | true, false -> (
            match in_index i x with
            | Some (a, b) -> Some (simp (a *! y), simp (b *! y))
            | None -> None)
        | false, true -> (
            match in_index i y with
            | Some (a, b) -> Some (simp (x *! a), simp (x *! b))
            | None -> None)
        | _ -> None)
    | Prim (Prim.Neg, [ x ]) -> (
        match in_index i x with
        | Some (a, b) -> Some (simp (int_ 0 -! a), simp (int_ 0 -! b))
        | None -> None)
    | Let (s, bound, body) when not (occurs i bound) -> (
        (* substitute and retry: common after let-bound strides *)
        match in_index i (subst1 s bound body) with
        | Some (a, b) -> Some (a, b)
        | None -> None)
    | _ -> None

(* local constant folding so coefficient comparison by alpha-equality works
   on the common shapes (0 + cols, 1 * cols, ...) *)
and simp (e : exp) : exp =
  let e = map_sub simp' e in
  match e with
  | Prim (Prim.Add, [ Const (Cint 0); x ]) | Prim (Prim.Add, [ x; Const (Cint 0) ]) -> x
  | Prim (Prim.Sub, [ x; Const (Cint 0) ]) -> x
  | Prim (Prim.Mul, [ Const (Cint 1); x ]) | Prim (Prim.Mul, [ x; Const (Cint 1) ]) -> x
  | Prim (Prim.Mul, [ Const (Cint 0); _ ]) | Prim (Prim.Mul, [ _; Const (Cint 0) ]) ->
      int_ 0
  | Prim (Prim.Add, [ Const (Cint x); Const (Cint y) ]) -> int_ (x + y)
  | Prim (Prim.Sub, [ Const (Cint x); Const (Cint y) ]) -> int_ (x - y)
  | Prim (Prim.Mul, [ Const (Cint x); Const (Cint y) ]) -> int_ (x * y)
  | e -> e

and simp' e = simp e

let is_zero e = alpha_equal (simp e) (int_ 0)
let is_one e = alpha_equal (simp e) (int_ 1)

(** [const_offset e] is [Some c] when [e] simplifies to the integer
    literal [c] — the bounded-halo case of the stencil analysis ([i + c]
    reads a neighbor at a statically known distance). *)
let const_offset e = match simp e with Const (Cint c) -> Some c | _ -> None

(** Coefficient equality up to the local simplifier. *)
let coeff_equal a b = alpha_equal (simp a) (simp b)

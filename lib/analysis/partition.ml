(** Partitioning analysis — Algorithm 1 of the paper.

    A forward dataflow pass over the program's let-spine decides, for every
    collection, whether it should be [Local] (one memory region) or
    [Partitioned] (spread across regions), seeded by the user's annotations
    on data sources and propagated by "move the computation to the data":

    - a parallel op (multiloop) consuming a [Partitioned] collection has
      its own output [Partitioned] when the output is partitionable
      (a [Collect]); reductions and bucket generators produce [Local]
      results;
    - sequential code consuming a [Partitioned] collection draws a warning
      unless whitelisted (length reads, whitelisted externs);
    - a [Partitioned] input with a non-local-friendly stencil triggers the
      nested-pattern rewrites, tried one at a time (keeping the search
      linear and order-independent, §4.2); if none improves the stencil the
      runtime falls back to remote reads, with a warning. *)

open Dmll_ir
open Exp
module R = Dmll_opt.Rewrite
module Span = Dmll_obs.Span

type warning =
  | Sequential_on_partitioned of Stencil.target
      (** sequential (non-multiloop) code dereferences a partitioned
          collection: disallowed on clusters, allowed with a warning on
          shared memory (§4.3) *)
  | Remote_access of Stencil.target * Stencil.t
      (** a partitioned collection is consumed with a stencil that cannot
          be made local by any available rewrite; the runtime will fetch
          remotely (§4.2 fallback) *)

(** Partition warnings in the shared diagnostic type, so [dmllc --lint]
    and the verifier report through one formatter. *)
let warning_to_diag = function
  | Sequential_on_partitioned t ->
      Diag.warning ~rule:"P-SEQ-ON-PARTITIONED"
        "sequential access to partitioned collection %s"
        (Stencil.target_to_string t)
  | Remote_access (t, s) ->
      Diag.warning ~rule:"P-REMOTE-ACCESS"
        "partitioned collection %s has %s stencil: runtime data movement"
        (Stencil.target_to_string t) (Stencil.to_string s)

let warning_to_string w = Diag.to_string (warning_to_diag w)

(** One cost-guided choice made during the stencil-triggered rewrite
    search: every applicable candidate (plus ["keep"], the no-rewrite
    alternative) with its predicted communication volume, and which one
    won.  The search stays linear and order-independent (§4.2); the comm
    plan is the objective, not a new search space. *)
type decision = {
  iteration : int;
  chosen : string;  (** winning rule name, or ["keep"] *)
  candidates : (string * float) list;
      (** every alternative considered, with predicted total bytes *)
  provenance : string;
      (** which selector produced the decision: ["greedy"] for this
          linear search, ["ilp"] / ["ilp-fallback:greedy"] /
          ["ilp-tie:greedy"] for the global plan selector ({!Plan}) *)
}

type report = {
  program : exp;  (** possibly rewritten by stencil-triggered transforms *)
  layouts : (Stencil.target * layout) list;
  stencils : (Stencil.target * Stencil.t) list;  (** global, per collection *)
  co_partitioned : (Stencil.target * Stencil.target) list;
  warnings : warning list;
  rewrites_applied : string list;
  decisions : decision list;
      (** chosen-vs-rejected alternatives, one entry per search iteration
          where any rewrite was applicable *)
}

let layout_of (t : Stencil.target) (layouts : (Stencil.target * layout) list) : layout =
  match List.find_opt (fun (t', _) -> Stencil.target_equal t t') layouts with
  | Some (_, l) -> l
  | None -> Local

(* ------------------------------------------------------------------ *)
(* Layout propagation                                                  *)
(* ------------------------------------------------------------------ *)

(* All Input annotations in the program. *)
let input_layouts (e : exp) : (Stencil.target * layout) list =
  let tbl = Hashtbl.create 8 in
  ignore
    (fold
       (fun () n ->
         match n with
         | Input (name, (Types.Arr _ | Types.Map _), l) -> Hashtbl.replace tbl name l
         | _ -> ())
       () e);
  Hashtbl.fold (fun n l acc -> (Stencil.Tinput n, l) :: acc) tbl []

(* Collection targets read anywhere inside a loop. *)
let loop_reads (l : loop) : Stencil.target list =
  List.map fst (Stencil.of_loop l)

let is_parallel = function Loop _ -> true | _ -> false

let output_partitionable (l : loop) : bool =
  List.for_all (function Collect _ -> true | _ -> false) l.gens

(* Sequential dereference census: does [e] (treated as sequential code —
   i.e. not descending into loops, which are parallel ops) dereference any
   partitioned collection?  [Len] and whitelisted externs are safe. *)
let sequential_derefs (layouts : (Stencil.target * layout) list) (e : exp) :
    Stencil.target list =
  let hits = ref [] in
  let note t =
    if layout_of t layouts = Partitioned && not (List.exists (Stencil.target_equal t) !hits)
    then hits := t :: !hits
  in
  let rec go e =
    match e with
    | Loop _ -> () (* parallel op: analyzed separately *)
    | Len _ -> () (* whitelisted: size reads do not dereference data *)
    | Extern { whitelisted = true; _ } -> ()
    | Read (base, ix) | KeyAt (base, ix) ->
        (match Stencil.target_of_exp base with Some t -> note t | None -> go base);
        go ix
    | MapRead (base, k, d) ->
        (match Stencil.target_of_exp base with Some t -> note t | None -> go base);
        go k;
        Option.iter go d
    | _ -> ignore (map_sub (fun s -> go s; s) e)
  in
  go e;
  !hits

(* Propagate layouts along the outer let-spine. *)
let propagate (e : exp) : (Stencil.target * layout) list * warning list =
  let layouts = ref (input_layouts e) in
  let warnings = ref [] in
  let set t l = layouts := (t, l) :: List.filter (fun (t', _) -> not (Stencil.target_equal t t')) !layouts in
  let rec spine e =
    match e with
    | Let (s, rhs, body) ->
        (match rhs with
        | Loop l ->
            let inputs = loop_reads l in
            let partitioned =
              List.filter (fun t -> layout_of t !layouts = Partitioned) inputs
            in
            if partitioned <> [] && output_partitionable l then
              set (Stencil.Tsym s) Partitioned
            else set (Stencil.Tsym s) Local
        | Input (_, _, l) -> set (Stencil.Tsym s) l
        | Var s' -> set (Stencil.Tsym s) (layout_of (Stencil.Tsym s') !layouts)
        | _ ->
            (* sequential right-hand side *)
            List.iter
              (fun t -> warnings := Sequential_on_partitioned t :: !warnings)
              (sequential_derefs !layouts rhs);
            set (Stencil.Tsym s) Local);
        spine body
    | Loop _ -> ()
    | _ ->
        List.iter
          (fun t -> warnings := Sequential_on_partitioned t :: !warnings)
          (sequential_derefs !layouts e)
  in
  spine e;
  (!layouts, List.rev !warnings)

(* ------------------------------------------------------------------ *)
(* Stencil checking with transform fallback                            *)
(* ------------------------------------------------------------------ *)

(* (loop, target) pairs where a partitioned collection is consumed with a
   non-local-friendly stencil. *)
let bad_accesses (e : exp) (layouts : (Stencil.target * layout) list) :
    (Stencil.target * Stencil.t) list =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun (t, s) ->
          if layout_of t layouts = Partitioned && not (Stencil.local_friendly s) then
            Some (t, s)
          else None)
        (Stencil.of_loop l))
    (Stencil.outer_loops e)

(** Predicted total communication volume of [e] under its own propagated
    layouts — the objective the rewrite search minimizes.  Also the
    tie-break objective the driver threads into horizontal fusion for
    cluster targets ({!Dmll_opt.Fusion.horizontal_with}) and the cost
    the global plan selector ({!Plan}) minimizes. *)
let predicted_volume ?input_lens ?(machine = Dmll_machine.Machine.ec2_cluster)
    (e : exp) : float =
  let layouts, _ = propagate e in
  Comm.static_total ?input_lens ~machine
    ~layout_of:(fun t -> layout_of t layouts)
    e

let warning_equal (a : warning) (b : warning) : bool =
  match (a, b) with
  | Sequential_on_partitioned t1, Sequential_on_partitioned t2 ->
      Stencil.target_equal t1 t2
  | Remote_access (t1, s1), Remote_access (t2, s2) ->
      Stencil.target_equal t1 t2 && s1 = s2
  | _ -> false

let dedup_warnings (ws : warning list) : warning list =
  List.fold_left
    (fun acc w -> if List.exists (warning_equal w) acc then acc else acc @ [ w ])
    [] ws

(** Assemble a {!report} for a finished plan: propagate layouts on the
    final [program], convert the remaining non-local-friendly accesses
    into {!Remote_access} warnings, and attach the rewrite/decision
    history.  Shared by the greedy search below and by the global plan
    selector ({!Plan}), so both selectors produce reports with identical
    shape. *)
let finalize ~(rewrites_applied : string list) ~(decisions : decision list)
    (program : exp) : report =
  let layouts, warnings = propagate program in
  let bad = bad_accesses program layouts in
  let warnings =
    dedup_warnings
      (warnings @ List.map (fun (t, s) -> Remote_access (t, s)) bad)
  in
  let is_partitioned t = layout_of t layouts = Partitioned in
  { program;
    layouts;
    stencils = Stencil.global program;
    co_partitioned = Stencil.co_partition_pairs program ~is_partitioned;
    warnings;
    rewrites_applied;
    decisions;
  }

(** Run the full analysis.  [transforms] defaults to the CPU set of
    Figure-3 rules; [reoptimize] is applied after any accepted rewrite so
    fusion can clean up (the paper's pipeline does the same for k-means:
    Conditional Reduce is followed by re-fusion); its default is the
    shared-memory pipeline with [?fusion_objective] threaded into
    horizontal fusion, so cluster-target re-fusion keeps honoring the
    communication veto.

    Rewrite selection is cost-guided: at each iteration every applicable
    rule is evaluated on the same program (linear, order-independent) and
    the candidate with the lowest predicted communication volume — which
    may be "keep", accepting remote reads when they are cheaper than the
    rewrite's gathers — wins; strict improvement is required, so the
    search terminates.  [machine] and [input_lens] parameterize the
    volume prediction ({!Comm}).

    [?tracer] records the analysis on the compile timeline: one span per
    stencil-classification pass (cat ["partition"], with partitioned and
    non-local-friendly access counts) and one span per cost-guided
    rewrite decision (with the chosen rule and the predicted volumes of
    the winner and of keeping the program). *)
let analyze ?tracer ?(transforms = Dmll_opt.Rules_nested.cpu_rules)
    ?fusion_objective ?reoptimize ?input_lens ?machine (e : exp) : report =
  let reoptimize =
    match reoptimize with
    | Some f -> f
    | None ->
        fun e ->
          (Dmll_opt.Pipeline.optimize_with ?fusion_objective e)
            .Dmll_opt.Pipeline.program
  in
  let volume e = predicted_volume ?input_lens ?machine e in
  let rewrites = ref [] in
  let decisions = ref [] in
  let trace_decision (d : decision) =
    match tracer with
    | None -> ()
    | Some tr ->
        let now = Span.now_us tr in
        Span.emit tr ~cat:"partition" ~name:"rewrite-decision"
          ~args:
            ([ ("iteration", Span.Int d.iteration);
               ("chosen", Span.Str d.chosen);
             ]
            @ List.map
                (fun (n, v) -> ("bytes:" ^ n, Span.Float v))
                d.candidates)
          ~ts_us:now ~dur_us:0.0 ()
  in
  let rec fix e iters =
    let layouts, warnings, bad =
      Span.with_span ?tracer ~cat:"partition" "stencil-classification"
        (fun () ->
          let layouts, warnings = propagate e in
          (layouts, warnings, bad_accesses e layouts))
    in
    (match tracer with
    | None -> ()
    | Some tr ->
        Span.emit tr ~cat:"partition" ~name:"classification-result"
          ~args:
            [ ("iteration", Span.Int iters);
              ( "partitioned",
                Span.Int
                  (List.length
                     (List.filter (fun (_, l) -> l = Partitioned) layouts)) );
              ("non_local_friendly", Span.Int (List.length bad));
            ]
          ~ts_us:(Span.now_us tr) ~dur_us:0.0 ());
    if bad = [] || iters >= 8 then (e, layouts, warnings, bad)
    else
      (* try each rewrite rule, one at a time, linear search (§4.2);
         every applicable candidate is scored on the same program *)
      let try_rule rule =
        let trace = R.new_trace () in
        let e' = R.sweep [ rule ] trace e in
        if trace.R.applied = [] then None
        else begin
          (* debug mode: verify the stencil-triggered rewrite itself *)
          Dmll_opt.Pipeline.run_check ("partition-rule:" ^ rule.R.rname) e';
          let e' = reoptimize e' in
          Some (rule.R.rname, e', volume e')
        end
      in
      let applicable = List.filter_map try_rule transforms in
      if applicable = [] then (e, layouts, warnings, bad)
      else begin
        let v_keep = volume e in
        let best_name, best_e, best_v =
          List.fold_left
            (fun ((_, _, bv) as best) ((_, _, v) as cand) ->
              if v < bv then cand else best)
            (List.hd applicable) (List.tl applicable)
        in
        let candidates =
          ("keep", v_keep) :: List.map (fun (n, _, v) -> (n, v)) applicable
        in
        if best_v < v_keep then begin
          let d =
            { iteration = iters;
              chosen = best_name;
              candidates;
              provenance = "greedy";
            }
          in
          decisions := !decisions @ [ d ];
          trace_decision d;
          rewrites := !rewrites @ [ best_name ];
          fix best_e (iters + 1)
        end
        else begin
          (* every rewrite moves at least as much data as the remote
             reads it removes: keep the program, fall back to the
             runtime's remote fetches *)
          let d =
            { iteration = iters;
              chosen = "keep";
              candidates;
              provenance = "greedy";
            }
          in
          decisions := !decisions @ [ d ];
          trace_decision d;
          ignore best_e;
          (e, layouts, warnings, bad)
        end
      end
  in
  let program, _layouts, _warnings, _bad = fix e 0 in
  finalize ~rewrites_applied:!rewrites ~decisions:!decisions program

(** All of a report's warnings as structured diagnostics. *)
let diags (r : report) : Diag.t list = List.map warning_to_diag r.warnings

(** The decision log in the machine-readable schema [dmllc --explain-comm
    --json] emits (field names/types are golden-tested — downstream
    tooling relies on them). *)
let decisions_to_json (ds : decision list) : string =
  let one (d : decision) =
    Printf.sprintf
      "{\"iteration\":%d,\"chosen\":\"%s\",\"provenance\":\"%s\",\"candidates\":[%s]}"
      d.iteration d.chosen d.provenance
      (String.concat ","
         (List.map
            (fun (n, v) -> Printf.sprintf "{\"rule\":\"%s\",\"bytes\":%.0f}" n v)
            d.candidates))
  in
  "[" ^ String.concat "," (List.map one ds) ^ "]"

(** One application's complete [--explain-comm --json] object. *)
let explain_to_json ~(app : string) ~(decisions : decision list)
    (summary : Comm.summary) : string =
  Printf.sprintf "{\"app\":\"%s\",\"decisions\":%s,\"comm\":%s}"
    (Comm.json_escape app)
    (decisions_to_json decisions)
    (Comm.summary_to_json summary)

(** Reference interpreter: the semantic ground truth.

    Implements exactly the sequential semantics of Figure 2 of the paper.
    Every optimization pass and every parallel/simulated executor is tested
    against this interpreter on shared inputs. *)

open Dmll_ir

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Hashtbl.hash
end)

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Extern registry                                                     *)
(* ------------------------------------------------------------------ *)

(** Implementations of [Extern] nodes, keyed by name.  Externs model the
    "arbitrary sequential code" of paper §4.3; tests register their own. *)
let extern_registry : (string, Value.t list -> Value.t) Hashtbl.t = Hashtbl.create 16

let register_extern name f = Hashtbl.replace extern_registry name f

let () =
  register_extern "debug_print" (fun vs ->
      List.iter (fun v -> print_endline (Value.to_string v)) vs;
      Value.Vunit);
  (* [size_hint] is the canonical whitelisted extern: reads a size field
     without dereferencing collection data (paper §4.3). *)
  register_extern "size_hint" (function
    | [ v ] -> Value.Vint (Value.length v)
    | _ -> error "size_hint: expected one argument");
  (* the optimizer's early-free marker (DESIGN.md §13): a no-op here — in
     executors that track a value environment, reaching the marker drops
     the freed binding, shrinking the resident set *)
  register_extern Exp.free_ename (fun _ -> Value.Vunit)

(* ------------------------------------------------------------------ *)
(* Primitive evaluation                                                *)
(* ------------------------------------------------------------------ *)

let eval_prim (p : Prim.t) (args : Value.t list) : Value.t =
  let open Value in
  let int2 f = match args with [ Vint a; Vint b ] -> Vint (f a b) | _ -> error "prim %s: int args expected" (Prim.name p) in
  let flt2 f = match args with [ Vfloat a; Vfloat b ] -> Vfloat (f a b) | _ -> error "prim %s: float args expected" (Prim.name p) in
  let flt1 f = match args with [ Vfloat a ] -> Vfloat (f a) | _ -> error "prim %s: float arg expected" (Prim.name p) in
  let cmp f =
    match args with
    | [ Vint a; Vint b ] -> Vbool (f (compare a b) 0)
    | [ Vfloat a; Vfloat b ] -> Vbool (f (compare a b) 0)
    | [ Vbool a; Vbool b ] -> Vbool (f (compare a b) 0)
    | [ Vstr a; Vstr b ] -> Vbool (f (compare a b) 0)
    | _ -> error "prim %s: comparable args expected" (Prim.name p)
  in
  match p with
  | Prim.Add -> int2 ( + )
  | Sub -> int2 ( - )
  | Mul -> int2 ( * )
  | Div -> (
      match args with
      | [ Vint _; Vint 0 ] -> error "integer division by zero"
      | _ -> int2 ( / ))
  | Mod -> (
      match args with
      | [ Vint _; Vint 0 ] -> error "integer modulo by zero"
      | _ -> int2 ( mod ))
  | Neg -> ( match args with [ Vint a ] -> Vint (-a) | _ -> error "neg")
  | Min -> int2 Stdlib.min
  | Max -> int2 Stdlib.max
  | Fadd -> flt2 ( +. )
  | Fsub -> flt2 ( -. )
  | Fmul -> flt2 ( *. )
  | Fdiv -> flt2 ( /. )
  | Fneg -> flt1 (fun x -> -.x)
  | Fmin -> flt2 Float.min
  | Fmax -> flt2 Float.max
  | Sqrt -> flt1 sqrt
  | Exp -> flt1 exp
  | Log -> flt1 log
  | Fabs -> flt1 Float.abs
  | Pow -> flt2 ( ** )
  | I2f -> ( match args with [ Vint a ] -> Vfloat (float_of_int a) | _ -> error "i2f")
  | F2i -> ( match args with [ Vfloat a ] -> Vint (int_of_float a) | _ -> error "f2i")
  | Eq -> cmp ( = )
  | Ne -> cmp ( <> )
  | Lt -> cmp ( < )
  | Le -> cmp ( <= )
  | Gt -> cmp ( > )
  | Ge -> cmp ( >= )
  | And -> ( match args with [ Vbool a; Vbool b ] -> Vbool (a && b) | _ -> error "&&")
  | Or -> ( match args with [ Vbool a; Vbool b ] -> Vbool (a || b) | _ -> error "||")
  | Not -> ( match args with [ Vbool a ] -> Vbool (not a) | _ -> error "!")
  | Strcat -> ( match args with [ Vstr a; Vstr b ] -> Vstr (a ^ b) | _ -> error "strcat")
  | Strlen -> ( match args with [ Vstr a ] -> Vint (String.length a) | _ -> error "strlen")
  | Strget -> (
      match args with
      | [ Vstr a; Vint i ] ->
          if i < 0 || i >= String.length a then error "strget: index %d out of bounds" i
          else Vint (Char.code a.[i])
      | _ -> error "strget")

(* ------------------------------------------------------------------ *)
(* Generator accumulators                                              *)
(* ------------------------------------------------------------------ *)

(** Mutable state of one generator during a loop traversal. *)
type gen_state =
  | Scollect of Value.t list ref  (** reversed *)
  | Sreduce of Value.t ref
  | Sbuckets of bucket_state

and bucket_state = {
  index : int Vtbl.t;  (** key -> bucket position *)
  mutable keys : Value.t array;  (** first-seen order; grows by doubling *)
  mutable vals : Value.t list array;
      (** per bucket: reversed element list (collect) or singleton (reduce) *)
  mutable nbuckets : int;
}

let new_bucket_state () =
  { index = Vtbl.create 64; keys = [||]; vals = [||]; nbuckets = 0 }

let bucket_slot (bs : bucket_state) (key : Value.t) : int =
  match Vtbl.find_opt bs.index key with
  | Some i -> i
  | None ->
      let i = bs.nbuckets in
      if i >= Array.length bs.keys then begin
        let cap = Stdlib.max 8 (2 * Array.length bs.keys) in
        let keys' = Array.make cap Value.Vunit in
        let vals' = Array.make cap [] in
        Array.blit bs.keys 0 keys' 0 i;
        Array.blit bs.vals 0 vals' 0 i;
        bs.keys <- keys';
        bs.vals <- vals'
      end;
      Vtbl.add bs.index key i;
      bs.keys.(i) <- key;
      bs.vals.(i) <- [];
      bs.nbuckets <- i + 1;
      i

let set_bucket (bs : bucket_state) (i : int) (f : Value.t list -> Value.t list) =
  bs.vals.(i) <- f bs.vals.(i)

let finalize_buckets (bs : bucket_state) ~(collect : bool) : Value.t =
  let keys = Array.sub bs.keys 0 bs.nbuckets in
  let vals =
    Array.init bs.nbuckets (fun i ->
        let b = bs.vals.(i) in
        if collect then Value.Varr (Value.varr_of_list (List.rev b))
        else match b with [ v ] -> v | _ -> error "finalize_buckets: reduce bucket")
  in
  Value.Vmap { mkeys = keys; mvals = vals }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type env = { vars : Value.t Sym.Map.t; inputs : string -> Value.t }

let no_inputs name = error "unbound input %s" name

let rec eval (env : env) (e : Exp.exp) : Value.t =
  let open Exp in
  match e with
  | Const Cunit -> Vunit
  | Const (Cbool b) -> Vbool b
  | Const (Cint i) -> Vint i
  | Const (Cfloat f) -> Vfloat f
  | Const (Cstr s) -> Vstr s
  | Var s -> (
      match Sym.Map.find_opt s env.vars with
      | Some v -> v
      | None -> error "unbound variable %a" Sym.pp s)
  | Prim (Prim.And, [ a; b ]) ->
      (* short-circuit, so fused conditions [c1 && c2] evaluate [c2] exactly
         when the unfused pipeline would have *)
      if Value.as_bool (eval env a) then eval env b else Vbool false
  | Prim (Prim.Or, [ a; b ]) ->
      if Value.as_bool (eval env a) then Vbool true else eval env b
  | Prim (p, args) -> eval_prim p (List.map (eval env) args)
  | If (c, t, f) -> if Value.as_bool (eval env c) then eval env t else eval env f
  | Let (s, a, b) ->
      let va = eval env a in
      eval { env with vars = Sym.Map.add s va env.vars } b
  | Tuple es -> Vtup (Array.of_list (List.map (eval env) es))
  | Proj (a, i) -> (
      match eval env a with
      | Vtup vs when i < Array.length vs -> vs.(i)
      | _ -> error "bad projection")
  | Record (_, fs) ->
      Vstruct (Array.of_list (List.map (fun (n, v) -> (n, eval env v)) fs))
  | Field (a, n) -> Value.struct_field (eval env a) n
  | Len a -> Vint (Value.length (eval env a))
  | Read (a, i) ->
      let va = eval env a and vi = Value.as_int (eval env i) in
      let n = Value.length va in
      if vi < 0 || vi >= n then error "read index %d out of bounds [0,%d)" vi n
      else Value.get va vi
  | MapRead (m, k, d) -> (
      let vm = Value.as_map (eval env m) and vk = eval env k in
      match Value.find_bucket vm vk with
      | Some v -> v
      | None -> (
          match d with
          | Some d -> eval env d
          | None -> error "key %s not found in map" (Value.to_string vk)))
  | KeyAt (m, i) ->
      let vm = Value.as_map (eval env m) and vi = Value.as_int (eval env i) in
      if vi < 0 || vi >= Array.length vm.mkeys then error "keyAt out of bounds"
      else vm.mkeys.(vi)
  | Input (name, _, _) -> env.inputs name
  | Extern { ename; eargs; _ } -> (
      match Hashtbl.find_opt extern_registry ename with
      | Some f -> f (List.map (eval env) eargs)
      | None -> error "unregistered extern %s" ename)
  | Loop { size; idx; gens } -> eval_loop env ~size ~idx ~gens

and eval_loop env ~size ~idx ~gens : Value.t =
  let open Exp in
  let n = Value.as_int (eval env size) in
  if n < 0 then error "negative loop size %d" n;
  (* Reduce identities are evaluated outside the loop body (Figure 2). *)
  let states =
    List.map
      (function
        | Collect _ -> Scollect (ref [])
        | Reduce { init; _ } -> Sreduce (ref (eval env init))
        | BucketCollect _ -> Sbuckets (new_bucket_state ())
        | BucketReduce _ -> Sbuckets (new_bucket_state ()))
      gens
  in
  for i = 0 to n - 1 do
    let envi = { env with vars = Sym.Map.add idx (Value.Vint i) env.vars } in
    List.iter2
      (fun g st ->
        let pass =
          match gen_cond g with None -> true | Some c -> Value.as_bool (eval envi c)
        in
        if pass then
          match (g, st) with
          | Collect { value; _ }, Scollect acc -> acc := eval envi value :: !acc
          | Reduce { value; a; b; rfun; _ }, Sreduce acc ->
              let v = eval envi value in
              let vars = Sym.Map.add a !acc (Sym.Map.add b v envi.vars) in
              acc := eval { envi with vars } rfun
          | BucketCollect { key; value; _ }, Sbuckets bs ->
              let slot = bucket_slot bs (eval envi key) in
              let v = eval envi value in
              set_bucket bs slot (fun old -> v :: old)
          | BucketReduce { key; value; a; b; rfun; init = _; _ }, Sbuckets bs ->
              let slot = bucket_slot bs (eval envi key) in
              let v = eval envi value in
              set_bucket bs slot (function
                | [] -> [ v ]
                | [ acc ] ->
                    let vars = Sym.Map.add a acc (Sym.Map.add b v envi.vars) in
                    [ eval { envi with vars } rfun ]
                | _ -> error "reduce bucket invariant")
          | _ -> error "generator/state mismatch")
      gens states
  done;
  let results =
    List.map2
      (fun g st ->
        match (g, st) with
        | Collect _, Scollect acc -> Value.Varr (Value.varr_of_list (List.rev !acc))
        | Reduce _, Sreduce acc -> !acc
        | BucketCollect _, Sbuckets bs -> finalize_buckets bs ~collect:true
        | BucketReduce _, Sbuckets bs -> finalize_buckets bs ~collect:false
        | _ -> error "generator/state mismatch")
      gens states
  in
  match results with [ v ] -> v | vs -> Vtup (Array.of_list vs)

(** Evaluate a program with named inputs. *)
let run ?(inputs = []) (e : Exp.exp) : Value.t =
  let lookup name =
    match List.assoc_opt name inputs with
    | Some v -> v
    | None -> no_inputs name
  in
  eval { vars = Sym.Map.empty; inputs = lookup } e

(** PageRank in both models the OptiGraph push-pull transformation
    switches between (paper §6.2):

    - {e pull}: each vertex gathers rank/degree from its in-neighbors —
      the natural shared-memory formulation; reads of the rank vector are
      data-dependent (an [Unknown] stencil — the paper's "sometimes the
      communication is fundamental" case);
    - {e push}: an edge-parallel BucketReduce keyed by the edge's target —
      the distributed formulation; the big edge arrays stream with
      [Interval] stencils and the shuffled contributions are the explicit
      communication. *)

module V = Dmll_interp.Value
module Csr = Dmll_graph.Csr

let damping = 0.85

(** One pull-model iteration; returns the new rank vector. *)
let program_pull ~nv () : Dmll_ir.Exp.exp =
  let base_v = (1.0 -. damping) /. float_of_int nv in
  let open Dmll_dsl.Dsl in
  let in_offsets = input_iarr "g.in_offsets" in
  let in_sources = input_iarr ~layout:Dmll_ir.Exp.Partitioned "g.in_sources" in
  let out_deg = input_iarr "g.out_deg" in
  let ranks = input_farr ~layout:Dmll_ir.Exp.Partitioned "ranks" in
  let base = float base_v in
  let body =
    tabulate (int nv) (fun v ->
        let acc =
          sum_range
            (get in_offsets (v + int 1) - get in_offsets v)
            (fun e ->
              let$ u = get in_sources (get in_offsets v + e) in
              get ranks u /. to_float (imax (get out_deg u) (int 1)))
        in
        base +. (float damping *. acc))
  in
  reveal body

(** [iters] unrolled pull iterations in one program: rank vector [i]
    feeds only iteration [i+1] and then dies, so the liveness-driven
    early-free pass (DESIGN.md §13) reclaims each one as soon as its
    successor is computed — without it, every intermediate vector stays
    resident to the end of the pipeline. *)
let program_pull_iterated ~nv ?(iters = 3) () : Dmll_ir.Exp.exp =
  let base_v = (1.0 -. damping) /. float_of_int nv in
  let open Dmll_dsl.Dsl in
  let in_offsets = input_iarr "g.in_offsets" in
  let in_sources = input_iarr ~layout:Dmll_ir.Exp.Partitioned "g.in_sources" in
  let out_deg = input_iarr "g.out_deg" in
  let ranks0 = input_farr ~layout:Dmll_ir.Exp.Partitioned "ranks" in
  let base = float base_v in
  let step ranks =
    tabulate (int nv) (fun v ->
        let acc =
          sum_range
            (get in_offsets (v + int 1) - get in_offsets v)
            (fun e ->
              let$ u = get in_sources (get in_offsets v + e) in
              get ranks u /. to_float (imax (get out_deg u) (int 1)))
        in
        base +. (float damping *. acc))
  in
  let rec go ranks i =
    if Stdlib.( >= ) i iters then step ranks
    else
      let$ r = step ranks in
      go r (Stdlib.( + ) i 1)
  in
  reveal (go ranks0 1)

(** One push-model iteration: contributions shuffled by target vertex. *)
let program_push ~nv () : Dmll_ir.Exp.exp =
  let base_v = (1.0 -. damping) /. float_of_int nv in
  let open Dmll_dsl.Dsl in
  let edge_src = input_iarr ~layout:Dmll_ir.Exp.Partitioned "g.edge_src" in
  let edge_dst = input_iarr ~layout:Dmll_ir.Exp.Partitioned "g.out_targets" in
  let out_deg = input_iarr "g.out_deg" in
  let ranks = input_farr "ranks" in
  let base = float base_v in
  let body =
    let$ contribs =
      group_reduce (length edge_dst)
        ~key:(fun e -> get edge_dst e)
        ~value:(fun e ->
          let$ u = get edge_src e in
          get ranks u /. to_float (imax (get out_deg u) (int 1)))
        ~init:(float 0.0)
        ~combine:(fun a b -> a +. b)
    in
    tabulate (int nv) (fun v ->
        base +. (float damping *. lookup_or contribs v ~default:(float 0.0)))
  in
  reveal body

let inputs (g : Csr.t) ~(ranks : float array) : (string * V.t) list =
  ("ranks", V.of_float_array ranks) :: Csr.inputs g

let initial_ranks (g : Csr.t) : float array =
  Array.make g.Csr.nv (1.0 /. float_of_int g.Csr.nv)

(** Hand-optimized references live in {!Dmll_graph.Kernels}. *)
let handopt_pull = Dmll_graph.Kernels.pagerank_pull_step

let handopt_push = Dmll_graph.Kernels.pagerank_push_step

(** Logistic regression (paper §3.2).

    The DMLL program is the paper's {e textbook} formulation: for each
    feature (column) j, a nested summation over all samples computes the
    gradient.  As written it parallelizes over the (few) features and
    broadcasts every sample — the Column-to-Row Reduce rule restructures
    it to a single pass over the samples reducing a gradient {e vector},
    after which code motion floats the per-sample hypothesis out of the
    per-feature inner loop.  For GPUs the Row-to-Column inverse is applied
    inside the kernel (paper: "distributing over samples (rows) and then
    summing over features (columns) within each node"). *)

module V = Dmll_interp.Value
module Gaussian = Dmll_data.Gaussian

let sigmoid (z : float Dmll_dsl.Dsl.t) : float Dmll_dsl.Dsl.t =
  let open Dmll_dsl.Dsl in
  float 1.0 /. (float 1.0 +. exp (neg z))

(** One gradient-descent step on [theta]; returns the new theta. *)
let program ~rows ~cols ~alpha () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let x = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let y = input_farr ~layout:Dmll_ir.Exp.Partitioned "y" in
  let theta = input_farr "theta" in
  let body =
    tabulate (int cols) (fun j ->
        let gradient =
          sum_range (int rows) (fun i ->
              Mat.get x i j *. (get y i -. sigmoid (Mat.dot_row x i theta)))
        in
        get theta j +. (float alpha *. gradient))
  in
  reveal body

(** [iters] unrolled gradient-descent steps in one program: each theta
    vector feeds only the next step and then dies — the early-free pass
    (DESIGN.md §13) reclaims every intermediate (and its fused gradient
    scratch) as the pipeline advances. *)
let program_iterated ~rows ~cols ~alpha ?(iters = 3) () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let x = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let y = input_farr ~layout:Dmll_ir.Exp.Partitioned "y" in
  let theta0 = input_farr "theta" in
  let step theta =
    tabulate (int cols) (fun j ->
        let gradient =
          sum_range (int rows) (fun i ->
              Mat.get x i j *. (get y i -. sigmoid (Mat.dot_row x i theta)))
        in
        get theta j +. (float alpha *. gradient))
  in
  let rec go theta i =
    if Stdlib.( >= ) i iters then step theta
    else
      let$ t = step theta in
      go t (Stdlib.( + ) i 1)
  in
  reveal (go theta0 1)

let inputs (d : Gaussian.dataset) ~(theta : float array) : (string * V.t) list =
  [ Gaussian.matrix_input d;
    ("y", V.of_float_array (Gaussian.binary_labels d));
    ("theta", V.of_float_array theta);
  ]

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

(** One step over flat arrays: single pass over the samples, gradient
    accumulated in a reused buffer. *)
let handopt ~(data : float array) ~(labels : float array) ~(rows : int) ~(cols : int)
    ~(alpha : float) ~(theta : float array) : float array =
  let grad = Array.make cols 0.0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      z := !z +. (data.(base + j) *. theta.(j))
    done;
    let h = 1.0 /. (1.0 +. Stdlib.exp (-. !z)) in
    let d = labels.(i) -. h in
    for j = 0 to cols - 1 do
      grad.(j) <- grad.(j) +. (data.(base + j) *. d)
    done
  done;
  Array.init cols (fun j -> theta.(j) +. (alpha *. grad.(j)))

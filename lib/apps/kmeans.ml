(** k-means clustering (paper Figure 1, §3.2, §4).

    The DMLL program is the {e shared-memory} formulation of Figure 1's
    first half — the one that "cannot be directly ported to typical
    distributed programming models": assign each row to its nearest
    centroid, then average the rows of each cluster with conditional
    reductions over the whole dataset.  The Conditional Reduce rule turns
    it into the Figure 5 bucketReduce form, pipeline fusion folds the
    assignment in, and horizontal fusion merges the sum and count
    traversals — all verified by the test suite.

    [handopt] is the manually optimized reference (Table 2's "C++"
    column): a single fused pass with unboxed accumulators. *)

module V = Dmll_interp.Value
module Gaussian = Dmll_data.Gaussian

(** One k-means iteration: returns the [k] new centroids (array of
    row-vectors). *)
let program ~rows ~cols ~k () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let m = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let c = Mat.input "clusters" ~rows:(int k) ~cols:(int cols) in
  let body =
    let$ assigned =
      tabulate (Mat.rows m) (fun i ->
          min_index (int k) (fun kk -> Mat.dist2_rows m i c kk))
    in
    tabulate (int k) (fun kk ->
        let$ sum =
          reduce_range
            ~cond:(fun j -> get assigned j = kk)
            (Mat.rows m)
            ~init:(vzero (Mat.cols m))
            (fun j -> Mat.row m j)
            vadd
        in
        let$ cnt =
          count_range_if (Mat.rows m) (fun j -> get assigned j = kk)
        in
        map sum (fun s -> if_ (cnt > int 0) (s /. to_float cnt) s))
  in
  reveal body

(** [iters] unrolled Lloyd iterations in one program.  The first step
    reads the flat [clusters] input like {!program}; every later step
    reads the previous step's result (an array of [k] row-vectors), so
    each intermediate centroid set — and its assignment histogram — is
    dead as soon as the next step finishes.  The liveness-driven
    early-free pass (DESIGN.md §13) reclaims them; without it they all
    stay resident to the end of the pipeline. *)
let program_iterated ~rows ~cols ~k ?(iters = 3) () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let m = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let c0 = Mat.input "clusters" ~rows:(int k) ~cols:(int cols) in
  let average assigned =
    tabulate (int k) (fun kk ->
        let$ sum =
          reduce_range
            ~cond:(fun j -> get assigned j = kk)
            (Mat.rows m)
            ~init:(vzero (Mat.cols m))
            (fun j -> Mat.row m j)
            vadd
        in
        let$ cnt =
          count_range_if (Mat.rows m) (fun j -> get assigned j = kk)
        in
        map sum (fun s -> if_ (cnt > int 0) (s /. to_float cnt) s))
  in
  let step_mat c =
    let$ assigned =
      tabulate (Mat.rows m) (fun i ->
          min_index (int k) (fun kk -> Mat.dist2_rows m i c kk))
    in
    average assigned
  in
  let step_rows cv =
    let$ assigned =
      tabulate (Mat.rows m) (fun i ->
          min_index (int k) (fun kk ->
              sum_range (int cols) (fun j ->
                  let d = Mat.get m i j -. get (get cv kk) j in
                  d *. d)))
    in
    average assigned
  in
  let rec go cv i =
    if Stdlib.( >= ) i iters then step_rows cv
    else
      let$ c = step_rows cv in
      go c (Stdlib.( + ) i 1)
  in
  let body =
    if Stdlib.( <= ) iters 1 then step_mat c0
    else
      let$ c1 = step_mat c0 in
      go c1 2
  in
  reveal body

(** The same iteration written the {e distributed-memory} way (Figure 1's
    second half): group the rows by their nearest centroid, then average
    each group.  Section 3.2's claim — "after transformation and fusion
    take place we end up with the exact same optimized code as the result
    of applying the GroupBy-Reduce rule to the groupBy formulation" — is
    verified by the test suite: both formulations compile to the same
    fused bucketReduce traversal and identical results. *)
let program_groupby ~rows ~cols ~k () : Dmll_ir.Exp.exp =
  let open Dmll_dsl.Dsl in
  let m = Mat.input ~layout:Dmll_ir.Exp.Partitioned "matrix" ~rows:(int rows) ~cols:(int cols) in
  let c = Mat.input "clusters" ~rows:(int k) ~cols:(int cols) in
  let body =
    (* groupRowsBy: bucket the row indices by nearest centroid *)
    let$ rows_ix = tabulate (Mat.rows m) (fun i -> i) in
    let$ grouped =
      group_by rows_ix ~key:(fun i -> min_index (int k) (fun kk -> Mat.dist2_rows m i c kk))
    in
    (* clusteredData.map(e => e.sum / e.count): vector row sums per group *)
    tabulate (buckets grouped) (fun g ->
        pair
          (bucket_key grouped g)
          (let sum =
             reduce_range
               (length (bucket_value grouped g))
               ~init:(vzero (Mat.cols m))
               (fun l -> Mat.row m (get (bucket_value grouped g) l))
               vadd
           in
           map sum (fun s -> s /. to_float (length (bucket_value grouped g)))))
  in
  reveal body

(** Flatten {!program_groupby}'s result ((key, centroid) pairs in
    first-seen order) into the same k x cols layout as {!handopt};
    clusters that received no rows keep their slot at zero. *)
let groupby_result_to_flat (v : V.t) ~k ~cols : float array =
  let out = Array.make (k * cols) 0.0 in
  for g = 0 to V.length v - 1 do
    match V.get v g with
    | V.Vtup [| V.Vint key; row |] ->
        Array.blit (V.to_float_array row) 0 out (key * cols) cols
    | _ -> invalid_arg "Kmeans.groupby_result_to_flat"
  done;
  out

let inputs (d : Gaussian.dataset) ~(centroids : float array) : (string * V.t) list =
  [ Gaussian.matrix_input d; ("clusters", V.of_float_array centroids) ]

(* ------------------------------------------------------------------ *)
(* Hand-optimized reference                                            *)
(* ------------------------------------------------------------------ *)

(** One iteration over flat arrays; returns new centroids (k x cols,
    row-major). *)
let handopt ~(data : float array) ~(rows : int) ~(cols : int) ~(k : int)
    ~(centroids : float array) : float array =
  let sums = Array.make (k * cols) 0.0 in
  let counts = Array.make k 0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    (* nearest centroid *)
    let best = ref 0 and best_d = ref infinity in
    for kk = 0 to k - 1 do
      let cb = kk * cols in
      let d = ref 0.0 in
      for j = 0 to cols - 1 do
        let x = data.(base + j) -. centroids.(cb + j) in
        d := !d +. (x *. x)
      done;
      if !d < !best_d then begin
        best_d := !d;
        best := kk
      end
    done;
    let sb = !best * cols in
    for j = 0 to cols - 1 do
      sums.(sb + j) <- sums.(sb + j) +. data.(base + j)
    done;
    counts.(!best) <- counts.(!best) + 1
  done;
  Array.init (k * cols) (fun p ->
      let kk = p / cols in
      if counts.(kk) > 0 then sums.(p) /. float_of_int counts.(kk) else sums.(p))

(** Flatten the DMLL result (array of k row-vectors) for comparison with
    {!handopt}. *)
let result_to_flat (v : V.t) ~cols : float array =
  let k = V.length v in
  let out = Array.make (k * cols) 0.0 in
  for kk = 0 to k - 1 do
    let row = V.to_float_array (V.get v kk) in
    Array.blit row 0 out (kk * cols) cols
  done;
  out

(* Tests of the native backend (generated OCaml compiled by ocamlopt):
   every application's generated program must compute exactly what the
   reference interpreter computes.  Skipped when the toolchain is absent. *)

open Dmll_interp
module Backend = Dmll_backend

let check = Alcotest.check
let tbool = Alcotest.bool

let available = Lazy.force Backend.Native.available

let native_matches ?(eps = 1e-9) name program inputs =
  if not available then ()
  else begin
    let opt = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
    let expected = Interp.run ~inputs program in
    let r = Backend.Native.run ~runs:1 ~inputs opt in
    check tbool
      (name ^ ": native = interpreter")
      true
      (Value.approx_equal ~eps expected r.Backend.Native.value);
    check tbool (name ^ ": positive time") true (r.Backend.Native.seconds >= 0.0)
  end

let test_toolchain () =
  if not available then
    Printf.printf "ocamlfind/ocamlopt unavailable; native tests skipped\n"

let rows = 200
let cols = 6
let k = 3

let ml = Dmll_data.Gaussian.generate ~rows ~cols ~classes:k ()
let cents = Dmll_data.Gaussian.random_centroids ~k ml

let test_kmeans () =
  native_matches "kmeans"
    (Dmll_apps.Kmeans.program ~rows ~cols ~k ())
    (Dmll_apps.Kmeans.inputs ml ~centroids:cents)

let test_logreg () =
  native_matches "logreg"
    (Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ())
    (Dmll_apps.Logreg.inputs ml ~theta:(Array.make cols 0.1))

let test_gda () =
  native_matches "gda" (Dmll_apps.Gda.program ~rows ~cols ()) (Dmll_apps.Gda.inputs ml)

let test_q1 () =
  let t = Dmll_data.Tpch.generate ~rows:500 () in
  (* the optimized program consumes columns; the interpreter reference runs
     the source program on structs — compare through the optimized one *)
  let program = Dmll_apps.Tpch_q1.program () in
  if available then begin
    let opt = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
    let inputs = Dmll_apps.Tpch_q1.soa_inputs t in
    let expected = Backend.Closure.run ~inputs opt in
    let r = Backend.Native.run ~runs:1 ~inputs opt in
    check tbool "q1 native = closure" true
      (Value.approx_equal ~eps:1e-9 expected r.Backend.Native.value)
  end

let test_gene () =
  let g = Dmll_data.Genes.generate ~reads:500 ~barcodes:20 () in
  let program = Dmll_apps.Gene.program () in
  if available then begin
    let opt = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
    let inputs = Dmll_apps.Gene.soa_inputs g in
    let expected = Backend.Closure.run ~inputs opt in
    let r = Backend.Native.run ~runs:1 ~inputs opt in
    check tbool "gene native = closure" true
      (Value.approx_equal ~eps:1e-9 expected r.Backend.Native.value)
  end

let test_pagerank () =
  let g = Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ()) in
  native_matches "pagerank"
    (Dmll_apps.Pagerank.program_pull ~nv:g.Dmll_graph.Csr.nv ())
    (Dmll_apps.Pagerank.inputs g ~ranks:(Dmll_apps.Pagerank.initial_ranks g))

let test_tricount () =
  let g =
    Dmll_graph.Csr.of_edges
      (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:3 ()))
  in
  native_matches "tricount" (Dmll_apps.Tricount.program ()) (Dmll_apps.Tricount.inputs g)

let test_gibbs () =
  let g = Dmll_data.Factor_graph.generate ~vars:40 ~factors:100 () in
  native_matches "gibbs"
    (Dmll_apps.Gibbs.program ~nvars:40 ~replicas:2 ())
    (Dmll_apps.Gibbs.inputs g
       ~state:(Dmll_data.Factor_graph.initial_state g)
       ~rand:(Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 g))

let () =
  Alcotest.run "native"
    [ ( "apps",
        [ Alcotest.test_case "toolchain" `Quick test_toolchain;
          Alcotest.test_case "kmeans" `Slow test_kmeans;
          Alcotest.test_case "logreg" `Slow test_logreg;
          Alcotest.test_case "gda" `Slow test_gda;
          Alcotest.test_case "tpch-q1" `Slow test_q1;
          Alcotest.test_case "gene" `Slow test_gene;
          Alcotest.test_case "pagerank" `Slow test_pagerank;
          Alcotest.test_case "tricount" `Slow test_tricount;
          Alcotest.test_case "gibbs" `Slow test_gibbs;
        ] );
    ]

(* Tests of the global plan-space analysis and its 0-1 ILP selector
   (DESIGN.md §15): the solver itself (optimality, propagation,
   determinism, node budget), the selector's guarantee that the chosen
   plan never moves more measured simulator traffic than the greedy
   plan — asserted on all twelve apps at 2 and 5 nodes with the
   C-COMM-OVERRUN machinery armed — the pinned kmeans 20-node decision,
   the W-FUSION-MISSED lint, a pinned-seed QCheck property over random
   partitioned programs, and the --explain-plan --json golden schema. *)

open Dmll_ir
open Exp
open Builder
module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Interp = Dmll_interp.Interp
module Comm = Dmll_analysis.Comm
module Partition = Dmll_analysis.Partition
module Plan = Dmll_analysis.Plan
module Ilp = Dmll_analysis.Ilp
module Diag = Dmll_analysis.Diag

let check = Alcotest.check
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-9

(* [open Builder] takes [+.] for exp construction; float slack
   comparisons go through this helper instead. *)
let le_eps a b = Stdlib.( <= ) a (Stdlib.( +. ) b 1e-6)

(* ---------------- the 0-1 ILP solver ---------------------------------- *)

let test_ilp_exactly_one () =
  let p =
    { Ilp.nvars = 3;
      cost = [| 5.0; 1.0; 3.0 |];
      constrs = [ Ilp.Exactly_one [ 0; 1; 2 ] ];
    }
  in
  match Ilp.solve p with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      check tbool "cheapest member chosen" true s.Ilp.assignment.(1);
      check tbool "others off" false
        (s.Ilp.assignment.(0) || s.Ilp.assignment.(2));
      check tfloat "objective" 1.0 s.Ilp.objective;
      check tbool "no timeout" false s.Ilp.stats.Ilp.timed_out;
      check tbool "root bound <= optimum" true
        (le_eps s.Ilp.stats.Ilp.root_bound s.Ilp.objective)

let test_ilp_implication () =
  (* taking the profitable var forces its (costly) prerequisite *)
  let p =
    { Ilp.nvars = 2;
      cost = [| 1.0; -3.0 |];
      constrs = [ Ilp.Implies (1, 0) ];
    }
  in
  match Ilp.solve p with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      check tbool "profitable var taken" true s.Ilp.assignment.(1);
      check tbool "prerequisite forced" true s.Ilp.assignment.(0);
      check tfloat "objective" (-2.0) s.Ilp.objective

let test_ilp_at_most () =
  (* three profitable vars, capacity one: exactly one survives *)
  let p =
    { Ilp.nvars = 3;
      cost = [| -1.0; -1.0; -1.0 |];
      constrs = [ Ilp.At_most ([ 0; 1; 2 ], 1) ];
    }
  in
  match Ilp.solve p with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      let set =
        Array.to_list s.Ilp.assignment |> List.filter (fun b -> b)
      in
      check Alcotest.int "exactly one set" 1 (List.length set);
      check tfloat "objective" (-1.0) s.Ilp.objective

let test_ilp_infeasible () =
  let p =
    { Ilp.nvars = 2;
      cost = [| 1.0; 1.0 |];
      constrs = [ Ilp.Exactly_one [ 0; 1 ]; Ilp.At_most ([ 0; 1 ], 0) ];
    }
  in
  check tbool "infeasible problem has no solution" true (Ilp.solve p = None)

let test_ilp_deterministic () =
  (* ties break to the lower index, and re-solving is bit-identical *)
  let p =
    { Ilp.nvars = 4;
      cost = [| 1.0; 1.0; -0.5; -0.5 |];
      constrs =
        [ Ilp.Exactly_one [ 0; 1 ];
          Ilp.At_most ([ 2; 3 ], 1);
          Ilp.Implies (2, 0);
        ];
    }
  in
  match (Ilp.solve p, Ilp.solve p) with
  | Some a, Some b ->
      check
        Alcotest.(array bool)
        "same assignment on every run" a.Ilp.assignment b.Ilp.assignment;
      (* two optima tie at 0.5; the deterministic order (index-major,
         value 0 first for non-negative costs, strict incumbent
         improvement) always lands on {x1, x3} *)
      check
        Alcotest.(array bool)
        "the tie lands on the pinned assignment"
        [| false; true; false; true |]
        a.Ilp.assignment
  | _ -> Alcotest.fail "expected solutions"

let test_ilp_node_budget () =
  (* a chain of exactly-one groups needs more than 3 nodes to close *)
  let p =
    { Ilp.nvars = 12;
      cost = Array.make 12 1.0;
      constrs =
        [ Ilp.Exactly_one [ 0; 1; 2; 3 ];
          Ilp.Exactly_one [ 4; 5; 6; 7 ];
          Ilp.Exactly_one [ 8; 9; 10; 11 ];
        ];
    }
  in
  check tbool "starved budget yields no solution" true
    (Ilp.solve ~node_budget:3 p = None);
  match Ilp.solve p with
  | None -> Alcotest.fail "default budget must close this search"
  | Some s ->
      check tfloat "one per group" 3.0 s.Ilp.objective;
      check Alcotest.string "provenance" "ilp" (Ilp.provenance s)

(* ---------------- shared app table (mirrors test_comm) ----------------- *)

let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 ()
let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data
let lr_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:5 ~classes:2 ()
let q1_table = Dmll_data.Tpch.generate ~rows:500 ()
let gene_reads = Dmll_data.Genes.generate ~reads:500 ~barcodes:20 ()

let pr_graph =
  Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ())

let tri_graph =
  Dmll_graph.Csr.of_edges
    (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:4 ()))

let knn_train = Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 ()
let knn_test = Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 ()
let nb_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 ()
let gibbs_graph = Dmll_data.Factor_graph.generate ~vars:50 ~factors:150 ()
let gibbs_state = Dmll_data.Factor_graph.initial_state gibbs_graph
let gibbs_rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 gibbs_graph

let apps : (string * exp * (string * V.t) list) list =
  let open Dmll_apps in
  [ ( "kmeans",
      Kmeans.program ~rows:60 ~cols:6 ~k:3 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "logreg",
      Logreg.program ~rows:50 ~cols:5 ~alpha:0.01 (),
      Logreg.inputs lr_data ~theta:(Array.make 5 0.1) );
    ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "tpch_q1",
      Tpch_q1.program (),
      Tpch_q1.aos_inputs q1_table @ Tpch_q1.soa_inputs q1_table );
    ( "gene",
      Gene.program (),
      Gene.aos_inputs gene_reads @ Gene.soa_inputs gene_reads );
    ( "pagerank_pull",
      Pagerank.program_pull ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ( "pagerank_push",
      Pagerank.program_push ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ("tricount", Tricount.program (), Tricount.inputs tri_graph);
    ( "knn",
      Knn.program ~train_rows:40 ~test_rows:12 ~cols:4 (),
      Knn.inputs ~train:knn_train ~test:knn_test );
    ( "naive_bayes",
      Naive_bayes.program ~rows:50 ~cols:4 (),
      Naive_bayes.inputs nb_data );
    ( "gibbs",
      Gibbs.program ~nvars:50 ~replicas:2 (),
      Gibbs.inputs gibbs_graph ~state:gibbs_state ~rand:gibbs_rand );
    ( "ridge",
      Ridge.program ~rows:50 ~cols:5 ~alpha:0.001 ~lambda:0.1 (),
      Ridge.inputs lr_data ~theta:(Array.make 5 0.2) );
  ]

let node_counts = [ 2; 5 ]

let config_for n =
  { R.Sim_cluster.default_config with cluster = M.with_nodes n M.ec2_cluster }

let with_validation f =
  let saved = !Comm.validate_enabled in
  Comm.validate_enabled := true;
  Fun.protect ~finally:(fun () -> Comm.validate_enabled := saved) f

(* ---------------- ILP measured traffic <= greedy, twelve apps --------- *)

let traffic_sum (r : Dmll.run_result) : float =
  List.fold_left (fun acc (_, b) -> Stdlib.( +. ) acc b) 0.0 r.Dmll.traffic

let cfg_for selector n =
  Dmll.Config.(
    default
    |> with_target (Dmll.Cluster (config_for n))
    |> with_plan_selector selector)

let test_apps_ilp_no_worse_measured () =
  with_validation (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let reference =
            (Dmll.execute Dmll.Config.default
               (Dmll.compile_with Dmll.Config.default program)
               ~inputs)
              .Dmll.value
          in
          let value_ok v =
            V.equal v reference || V.approx_equal ~eps:1e-6 reference v
          in
          List.iter
            (fun n ->
              let leg selector =
                let cfg = cfg_for selector n in
                let c = Dmll.compile_with cfg program in
                let r = Dmll.execute cfg c ~inputs in
                (traffic_sum r, r.Dmll.value)
              in
              match (leg Dmll.Config.Ilp, leg Dmll.Config.Greedy) with
              | (m_ilp, v_ilp), (m_greedy, v_greedy) ->
                  check tbool
                    (Printf.sprintf "%s@%d nodes: ILP value ok" name n)
                    true (value_ok v_ilp);
                  check tbool
                    (Printf.sprintf "%s@%d nodes: greedy value ok" name n)
                    true (value_ok v_greedy);
                  check tbool
                    (Printf.sprintf
                       "%s@%d nodes: ILP measured %.0fB <= greedy %.0fB" name n
                       m_ilp m_greedy)
                    true (le_eps m_ilp m_greedy)
              | exception Diag.Failed { stage; diags } ->
                  Alcotest.failf "%s@%d nodes: comm-plan overrun at %s: %s" name
                    n stage
                    (String.concat "; " (List.map Diag.to_string diags)))
            node_counts)
        apps)

(* ---------------- the pinned kmeans 20-node decision ------------------- *)

let test_kmeans_20node_decision () =
  (* the dmllc registration sizes at the paper's 20-node EC2 cluster *)
  let machine = M.ec2_cluster in
  let input_lens = [ ("matrix", 16000); ("clusters", 128) ] in
  let source = Dmll_apps.Kmeans.program ~rows:1000 ~cols:16 ~k:8 () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] ~horizontal_fusion:false
       source)
      .Dmll_opt.Pipeline.program
  in
  let r = Plan.analyze ~machine ~input_lens generic in
  match List.rev r.Plan.report.Partition.decisions with
  | [] -> Alcotest.fail "no plan decision recorded"
  | d :: _ -> (
      check tbool "solver provenance recorded" true
        (List.mem d.Partition.provenance
           [ "ilp"; "ilp-tie:greedy"; "ilp-fallback:greedy" ]);
      match List.assoc_opt "greedy" d.Partition.candidates with
      | None -> Alcotest.fail "greedy alternative missing from the decision"
      | Some greedy_bytes ->
          if String.equal d.Partition.chosen "greedy" then
            (* the pinned decision is kept *)
            ()
          else
            (* a new decision must be justified by strictly lower
               predicted volume, recorded right in the decision *)
            let chosen_bytes =
              match List.assoc_opt d.Partition.chosen d.Partition.candidates with
              | Some b -> b
              | None -> Alcotest.failf "chosen plan %S not among candidates"
                          d.Partition.chosen
            in
            check tbool
              (Printf.sprintf "new plan %.0fB strictly beats greedy %.0fB"
                 chosen_bytes greedy_bytes)
              true
              (chosen_bytes < greedy_bytes))

(* ---------------- W-FUSION-MISSED ------------------------------------- *)

(* Two adjacent distributed loops each broadcasting the same local
   collection: fusing them pays for that broadcast once instead of
   twice, so leaving them unfused must warn. *)
let unfused_pair () =
  let lc = Input ("lc", Types.Arr Types.Float, Local) in
  let pc = Input ("pc", Types.Arr Types.Float, Partitioned) in
  let a = Sym.fresh ~name:"a" (Types.Arr Types.Float) in
  let b = Sym.fresh ~name:"b" (Types.Arr Types.Float) in
  Let
    ( a,
      collect ~size:(Len pc) (fun i -> read pc i +. read lc i),
      Let
        ( b,
          collect ~size:(Len pc) (fun i -> read pc i *. read lc i),
          Tuple [ Var a; Var b ] ) )

let test_fusion_missed_lint () =
  let machine = M.with_nodes 4 M.ec2_cluster in
  let diags = Plan.fusion_missed_diags ~machine (unfused_pair ()) in
  check tbool "W-FUSION-MISSED raised on the unfused pair" true
    (Diag.has_rule diags "W-FUSION-MISSED");
  check tbool "it is a warning, not an error" false (Diag.has_errors diags);
  (* the standard pipeline fuses the pair; the warning disappears *)
  let fused =
    (Dmll_opt.Pipeline.optimize_with (unfused_pair ())).Dmll_opt.Pipeline.program
  in
  check tbool "no warning once fused" true
    (Plan.fusion_missed_diags ~machine fused = [])

(* ---------------- random programs: ILP <= greedy, exact values --------- *)

let prop_ilp_plan_no_worse =
  QCheck.Test.make ~count:100
    ~name:
      "ILP plan predicted <= greedy predicted; both bit-identical to the \
       interpreter on the simulated cluster"
    Dmll_testgen.Gen_ir.arbitrary_partitioned_program (fun e ->
      let inputs = [ ("xs", V.of_float_array (Array.init 96 float_of_int)) ] in
      match Interp.run ~inputs e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let machine = M.with_nodes 3 M.ec2_cluster in
          let r = Plan.analyze ~machine ~input_lens:[ ("xs", 96) ] e in
          let x = r.Plan.explain in
          if
            not
              (le_eps x.Plan.chosen.Plan.predicted_bytes
                 x.Plan.greedy.Plan.predicted_bytes)
          then
            QCheck.Test.fail_reportf
              "ILP plan predicted %.0fB > greedy %.0fB on:@.%s"
              x.Plan.chosen.Plan.predicted_bytes
              x.Plan.greedy.Plan.predicted_bytes (Pp.to_string e)
          else
            with_validation (fun () ->
                let run p =
                  (R.Sim_cluster.run ~config:(config_for 3) ~inputs p)
                    .R.Sim_common.value
                in
                V.equal expected (run x.Plan.chosen.Plan.program)
                && V.equal expected (run x.Plan.greedy.Plan.program)))

(* ---------------- --explain-plan --json golden schema ------------------ *)

open Dmll_testgen.Json_check

let tkeys = Alcotest.(list string)

let choice_keys =
  [ "label"; "predicted_bytes"; "objective"; "rewrites"; "fusions"; "demotions" ]

let check_choice label c =
  check tkeys (label ^ " keys") choice_keys (keys_of c);
  ignore (num (field c "predicted_bytes"));
  ignore (num (field c "objective"));
  List.iter (fun r -> ignore (str r)) (arr (field c "rewrites"))

let test_explain_plan_json_schema () =
  (* reproduce dmllc --explain-plan kmeans_tiny --json --nodes 4
     in-process *)
  let machine = M.with_nodes 4 M.ec2_cluster in
  let input_lens = [ ("matrix", 256); ("clusters", 16) ] in
  let source = Dmll_apps.Kmeans.program ~rows:64 ~cols:4 ~k:4 () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] ~horizontal_fusion:false
       source)
      .Dmll_opt.Pipeline.program
  in
  let r =
    Plan.analyze ~transforms:Dmll_opt.Rules_nested.cpu_rules ~machine
      ~input_lens generic
  in
  let json = Plan.explain_to_json ~app:"kmeans_tiny" r.Plan.explain in
  let doc = parse json in
  check tkeys "top-level keys"
    [ "app"; "nodes"; "provenance"; "rounds"; "chosen"; "greedy"; "ilp";
      "solver"; "space" ]
    (keys_of doc);
  check Alcotest.string "app name" "kmeans_tiny" (str (field doc "app"));
  check (Alcotest.float 0.0) "nodes" 4.0 (num (field doc "nodes"));
  check tbool "provenance is a solver provenance" true
    (List.mem
       (str (field doc "provenance"))
       [ "ilp"; "ilp-tie:greedy"; "ilp-fallback:greedy" ]);
  ignore (num (field doc "rounds"));
  check_choice "chosen" (field doc "chosen");
  check_choice "greedy" (field doc "greedy");
  (match field doc "ilp" with
  | Jnull -> ()
  | ilp -> check_choice "ilp" ilp);
  (match field doc "solver" with
  | Jnull -> ()
  | solver ->
      check tkeys "solver keys"
        [ "vars"; "constraints"; "explored"; "node_budget"; "timed_out";
          "root_bound" ]
        (keys_of solver);
      (match field solver "timed_out" with
      | Jbool _ -> ()
      | _ -> Alcotest.fail "timed_out must be a bool"));
  let space = field doc "space" in
  check tkeys "space keys" [ "truncated"; "configs" ] (keys_of space);
  let configs = arr (field space "configs") in
  check tbool "the keep configuration is present" true (configs <> []);
  List.iter
    (fun cfg ->
      check tkeys "config keys"
        [ "label"; "rewrites"; "base_bytes"; "mem_peak_bytes"; "mem_penalty";
          "fusions"; "demotions" ]
        (keys_of cfg);
      ignore (num (field cfg "base_bytes"));
      List.iter
        (fun f ->
          check tkeys "fusion keys" [ "label"; "delta_bytes" ] (keys_of f))
        (arr (field cfg "fusions"));
      List.iter
        (fun d ->
          check tkeys "demotion keys" [ "label"; "delta_bytes" ] (keys_of d))
        (arr (field cfg "demotions")))
    configs;
  (* the selector's guard, visible in the document itself *)
  check tbool "chosen predicted <= greedy predicted" true
    (le_eps
       (num (field (field doc "chosen") "predicted_bytes"))
       (num (field (field doc "greedy") "predicted_bytes")))

(* ---------------------------------------------------------------------- *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "plan"
    [ ( "ilp",
        [ Alcotest.test_case "exactly-one optimum" `Quick test_ilp_exactly_one;
          Alcotest.test_case "implication" `Quick test_ilp_implication;
          Alcotest.test_case "at-most capacity" `Quick test_ilp_at_most;
          Alcotest.test_case "infeasibility" `Quick test_ilp_infeasible;
          Alcotest.test_case "determinism" `Quick test_ilp_deterministic;
          Alcotest.test_case "node budget" `Quick test_ilp_node_budget;
        ] );
      ( "selection",
        [ Alcotest.test_case "twelve apps: ILP measured <= greedy" `Slow
            test_apps_ilp_no_worse_measured;
          Alcotest.test_case "kmeans 20-node decision pinned or justified"
            `Quick test_kmeans_20node_decision;
        ] );
      ( "lint",
        [ Alcotest.test_case "W-FUSION-MISSED" `Quick test_fusion_missed_lint ]
      );
      ("random", [ qt prop_ilp_plan_no_worse ]);
      ( "explain-json",
        [ Alcotest.test_case "golden schema for kmeans_tiny" `Quick
            test_explain_plan_json_schema ] );
    ]

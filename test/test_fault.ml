(* Fault-tolerance tests (DESIGN.md §9).

   The contract under test everywhere: injected faults — crashes,
   stragglers, dropped remote reads, up to half the cluster failing
   permanently — change the clock and the event counters but NEVER the
   computed values.  Recovery is deterministic lineage recomputation, so
   every faulty run is checked bit-identical (or float-merge-identical)
   to fault-free sequential execution, and the simulated breakdown must
   show the recovery being paid for. *)

open Dmll_ir
open Dmll_interp
open Dmll_runtime
open Exp
open Builder
module M = Dmll_machine.Machine

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let xs_input = Exp.Input ("xs", Types.Arr Types.Float, Exp.Partitioned)
let xs_val n = Value.of_float_array (Array.init n (fun i -> float_of_int (i mod 17)))

(* An aggressive but transient-heavy regime: lots of injected events, all
   recoverable within the retry budget or by lineage recomputation. *)
let stress_spec =
  { M.default_faults with
    M.fault_seed = 42;
    crash_prob = 0.25;
    crash_transient_frac = 0.5;
    straggler_prob = 0.1;
    max_retries = 2;
    backoff_us = 1.0;
  }

(* ---------------- spec syntax ---------------- *)

let test_spec_parse () =
  (match Fault.parse "seed=7,crash=0.25,straggler=0.1,retries=5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      check tint "seed" 7 s.M.fault_seed;
      check (Alcotest.float 0.0) "crash" 0.25 s.M.crash_prob;
      check (Alcotest.float 0.0) "straggler" 0.1 s.M.straggler_prob;
      check tint "retries" 5 s.M.max_retries;
      (* unset keys keep the defaults *)
      check (Alcotest.float 0.0) "default backoff" M.default_faults.M.backoff_us
        s.M.backoff_us);
  (* print/parse round-trip *)
  (match Fault.parse (Fault.to_string stress_spec) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok s -> check tbool "round-trip" true (s = stress_spec));
  let bad s = match Fault.parse s with Error _ -> true | Ok _ -> false in
  check tbool "garbage rejected" true (bad "bogus");
  check tbool "unknown key rejected" true (bad "crashes=0.5");
  check tbool "bad number rejected" true (bad "crash=often")

(* An unknown key must produce a structured Diag (stable rule F-SPEC)
   whose message lists every valid key — so a typoed --faults value on the
   CLI tells the user exactly what the grammar accepts. *)
let test_spec_diag () =
  match Fault.parse_spec "crash=0.5,crashes=0.5" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error d ->
      check Alcotest.string "rule id" "F-SPEC" d.Dmll_analysis.Diag.rule;
      let msg = d.Dmll_analysis.Diag.message in
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      check tbool "names the offender" true (contains "crashes");
      check tbool "lists the valid keys" true (contains "valid keys");
      List.iter
        (fun k -> check tbool (Printf.sprintf "mentions %s" k) true (contains k))
        Fault.valid_keys

(* Property: pp_spec and parse_spec are exact inverses over arbitrary
   specs.  Floats print as %.17g, which round-trips every finite double
   bit-for-bit, so plain structural equality holds — not approximate. *)
let spec_roundtrip_prop =
  let gen =
    let open QCheck.Gen in
    let pf = float_range 0.0 1.0 in
    let* fault_seed = int_range 0 1_000_000 in
    let* crash_prob = pf in
    let* crash_transient_frac = pf in
    let* straggler_prob = pf in
    let* straggler_slowdown = float_range 1.0 50.0 in
    let* read_drop_prob = pf in
    let* read_delay_prob = pf in
    let* read_delay_us = float_range 0.0 5000.0 in
    let* max_retries = int_range 0 9 in
    let* backoff_us = float_range 0.0 1000.0 in
    let* heartbeat_ms = float_range 0.1 100.0 in
    let* join_prob = pf in
    let* leave_prob = pf in
    let* spare_nodes = int_range 0 8 in
    let* partition_prob = pf in
    let* sever_prob = pf in
    let* corrupt_prob = pf in
    let* link_delay_prob = pf in
    let* link_delay_ms = float_range 0.0 50.0 in
    return
      { M.fault_seed;
        crash_prob;
        crash_transient_frac;
        straggler_prob;
        straggler_slowdown;
        read_drop_prob;
        read_delay_prob;
        read_delay_us;
        max_retries;
        backoff_us;
        heartbeat_ms;
        join_prob;
        leave_prob;
        spare_nodes;
        partition_prob;
        sever_prob;
        corrupt_prob;
        link_delay_prob;
        link_delay_ms;
      }
  in
  QCheck.Test.make ~count:300 ~name:"pp_spec/parse_spec round-trip"
    (QCheck.make ~print:Fault.to_string gen) (fun spec ->
      match Fault.parse_spec (Fmt.str "%a" Fault.pp_spec spec) with
      | Error d ->
          QCheck.Test.fail_reportf "rejected its own output: %s"
            (Dmll_analysis.Diag.to_string d)
      | Ok round -> round = spec)

(* ---------------- deterministic draws ---------------- *)

let test_draw_determinism () =
  let f1 = Fault.create stress_spec in
  let f2 = Fault.create stress_spec in
  for loop = 1 to 5 do
    for node = 0 to 19 do
      if Fault.node_fate f1 ~loop ~node <> Fault.node_fate f2 ~loop ~node then
        Alcotest.failf "node fate diverged at loop %d node %d" loop node
    done
  done;
  (* a different seed gives a different schedule *)
  let f3 = Fault.create { stress_spec with M.fault_seed = 43 } in
  let differs = ref false in
  for loop = 1 to 5 do
    for node = 0 to 19 do
      if Fault.node_fate f1 ~loop ~node <> Fault.node_fate f3 ~loop ~node then
        differs := true
    done
  done;
  check tbool "seed changes the schedule" true !differs

(* ---------------- coalesce + replan ---------------- *)

let test_coalesce () =
  let r lo hi = { Chunk.lo; hi } in
  check tbool "merges adjacent" true
    (Chunk.coalesce [ r 5 10; r 0 5 ] = [ r 0 10 ]);
  check tbool "keeps gaps" true
    (Chunk.coalesce [ r 7 9; r 0 3 ] = [ r 0 3; r 7 9 ]);
  check tbool "absorbs overlap" true (Chunk.coalesce [ r 0 8; r 4 6 ] = [ r 0 8 ]);
  check tbool "drops empties" true (Chunk.coalesce [ r 3 3 ] = [])

let prop_replan_covers =
  (* removing ANY strict subset of nodes leaves a plan that still covers
     [0,n) exactly *)
  QCheck.Test.make ~count:200 ~name:"replanned schedule still covers"
    QCheck.(
      quad (int_range 2 8) (int_range 1 4) (int_range 1 8) (int_range 0 5000))
    (fun (nodes, sockets, cores, n) ->
      (* n >= nodes keeps at least one survivor owning work; below that,
         every unit can land on the dead set and replan rightly refuses *)
      QCheck.assume (n >= nodes);
      let units = Schedule.plan ~nodes ~sockets ~cores n in
      let dead = List.init (nodes - 1) (fun i -> i * 2 mod nodes) in
      let dead = List.sort_uniq compare dead in
      let replanned = Schedule.replan ~dead units in
      Schedule.covers replanned n
      && List.for_all
           (fun (u : Schedule.unit_of_work) ->
             Chunk.size u.Schedule.range = 0 || not (List.mem u.Schedule.node dead))
           replanned)

let test_replan_boundaries () =
  let boundaries = [ 250; 500; 750 ] in
  let units = Schedule.plan ~boundaries ~nodes:4 ~sockets:1 ~cores:1 1000 in
  let replanned = Schedule.replan ~boundaries ~dead:[ 1 ] units in
  check tbool "covers after replan" true (Schedule.covers replanned 1000);
  (* re-split work still cuts on directory boundaries *)
  List.iter
    (fun (u : Schedule.unit_of_work) ->
      check tbool "cut on a boundary" true
        (List.mem u.Schedule.range.Chunk.lo (0 :: boundaries)))
    replanned;
  (* no-op cases *)
  check tbool "no dead nodes" true (Schedule.replan ~dead:[] units == units);
  check tbool "all dead rejected" true
    (match Schedule.replan ~dead:[ 0; 1; 2; 3 ] units with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- domain executor under injection ---------------- *)

let test_domains_bit_identical () =
  (* integer reduction: merge order cannot hide behind float rounding, so
     the faulty runs must match bit for bit under both schedules — for
     every seed, including ones whose schedule injects nothing *)
  let e =
    isum ~size:(Exp.Len xs_input) (fun i -> f2i (Exp.Read (xs_input, i)) *! int_ 3)
  in
  let inputs = [ ("xs", xs_val 1009) ] in
  let expected = Interp.run ~inputs e in
  let injected = ref 0 in
  for seed = 0 to 9 do
    List.iter
      (fun schedule ->
        let fault = Fault.create { stress_spec with M.fault_seed = seed } in
        let got = Exec_domains.run ~domains:3 ~schedule ~faults:fault ~inputs e in
        check value "faulty = sequential" expected got;
        injected := !injected + Fault.total_injected fault)
      [ Exec_domains.Static; Exec_domains.Dynamic ]
  done;
  check tbool "faults actually injected" true (!injected > 0)

let prop_domains_faulty_random =
  QCheck.Test.make ~count:100 ~name:"faulty domain executor = interpreter"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let fault = Fault.create stress_spec in
          Value.approx_equal ~eps:1e-6 expected
            (Exec_domains.run ~domains:3 ~faults:fault e))

(* ---------------- remote-read retry and degradation ---------------- *)

let test_read_retry_and_degradation () =
  let v = Value.of_float_array (Array.init 40 float_of_int) in
  let d = Dist_array.make_directory ~n:40 ~nodes:4 ~sockets_per_node:1 in
  (* every remote read drops, retries exhaust, degraded replica serves *)
  let always_drop =
    Fault.create
      { stress_spec with M.read_drop_prob = 1.0; read_delay_prob = 0.0; max_retries = 2 }
  in
  let t = Dist_array.scatter ~faults:always_drop d v in
  check value "degraded read still correct" (Value.Vfloat 39.0)
    (Dist_array.read t ~from_loc:0 39);
  check tint "retried to the cap" 2 (Dist_array.remote_retry_count t);
  check tint "then degraded" 1 (Dist_array.degraded_read_count t);
  check tbool "backoff charged" true (Dist_array.injected_delay_us t > 0.0);
  (* local reads never touch the fault machinery *)
  ignore (Dist_array.read t ~from_loc:0 0);
  check tint "local read unaffected" 1 (Dist_array.degraded_read_count t);
  (* latency spikes delay but neither retry nor degrade *)
  let always_slow =
    Fault.create { stress_spec with M.read_drop_prob = 0.0; read_delay_prob = 1.0 }
  in
  let t2 = Dist_array.scatter ~faults:always_slow d v in
  check value "delayed read correct" (Value.Vfloat 25.0)
    (Dist_array.read t2 ~from_loc:0 25);
  check tint "no retries" 0 (Dist_array.remote_retry_count t2);
  check tint "no degradation" 0 (Dist_array.degraded_read_count t2);
  check tbool "latency charged" true (Dist_array.injected_delay_us t2 > 0.0)

(* ---------------- cluster simulator under injection ---------------- *)

let multiloop_program =
  (* two partitioned multiloops, so permanent failures in the first shape
     the second's planning *)
  bind ~ty:(Types.Arr Types.Float)
    (collect ~size:(Exp.Len xs_input) (fun i ->
         Exp.Read (xs_input, i) *. float_ 2.0))
    (fun m -> fsum ~size:(len m) (fun i -> read m i))

let cluster_run ?faults inputs =
  let config =
    { Sim_cluster.default_config with
      cluster = M.ec2_cluster;
      faults = Option.map Fault.create faults;
    }
  in
  (config, Sim_cluster.run ~config ~inputs multiloop_program)

let test_cluster_recovery_phases () =
  let inputs = [ ("xs", xs_val 200_000) ] in
  let expected = Interp.run ~inputs multiloop_program in
  let _, healthy = cluster_run inputs in
  check value "healthy value exact" expected healthy.Sim_common.value;
  (* a harsh regime: with 20 nodes and crash=0.5, ~half the cluster dies
     on the first loop (the spec's transient fraction keeps some back) *)
  let harsh =
    { stress_spec with M.crash_prob = 0.5; crash_transient_frac = 0.3 }
  in
  let config, faulty = cluster_run ~faults:harsh inputs in
  check value "faulty value bit-identical" expected faulty.Sim_common.value;
  let phase = Sim_common.phase_total faulty in
  List.iter
    (fun p -> check tbool (p ^ " phase charged") true (phase p > 0.0))
    Sim_common.recovery_phases;
  check tbool "recovery costs simulated time" true
    (faulty.Sim_common.seconds > healthy.Sim_common.seconds);
  (match config.Sim_cluster.faults with
  | None -> assert false
  | Some f ->
      check tbool "events recorded" true (Fault.total_injected f > 0);
      check tbool "replans recorded" true
        (String.length (Fault.stats_to_string f) > 0));
  (* healthy breakdown carries no recovery phases at all *)
  List.iter
    (fun p -> check (Alcotest.float 0.0) (p ^ " absent when healthy") 0.0
        (Sim_common.phase_total healthy p))
    Sim_common.recovery_phases

let test_cluster_fault_determinism () =
  let inputs = [ ("xs", xs_val 100_000) ] in
  let _, r1 = cluster_run ~faults:stress_spec inputs in
  let _, r2 = cluster_run ~faults:stress_spec inputs in
  check (Alcotest.float 0.0) "same seed, same clock" r1.Sim_common.seconds
    r2.Sim_common.seconds;
  check value "same seed, same value" r1.Sim_common.value r2.Sim_common.value;
  let _, r3 =
    cluster_run ~faults:{ stress_spec with M.fault_seed = 99 } inputs
  in
  check value "different seed, same value" r1.Sim_common.value r3.Sim_common.value

(* ---------------- degenerate 1-node cluster ---------------- *)

let test_single_node_no_collectives () =
  check tint "no tree on 1 node" 0 (Sim_cluster.tree_depth 1);
  check tint "no tree on 0 nodes" 0 (Sim_cluster.tree_depth 0);
  check tint "2 nodes, depth 1" 1 (Sim_cluster.tree_depth 2);
  check tint "20 nodes, depth 5" 5 (Sim_cluster.tree_depth 20);
  let inputs = [ ("xs", xs_val 50_000) ] in
  let config =
    { Sim_cluster.default_config with cluster = M.with_nodes 1 M.ec2_cluster }
  in
  let r = Sim_cluster.run ~config ~inputs multiloop_program in
  check value "1-node value exact" (Interp.run ~inputs multiloop_program)
    r.Sim_common.value;
  (* no broadcast tree, no replication, no gather: communication-free *)
  List.iter
    (fun p ->
      check (Alcotest.float 0.0) (p ^ " free on 1 node") 0.0
        (Sim_common.phase_total r p))
    [ "broadcast"; "replicate"; "gather" ];
  check tbool "compute still charged" true
    (Sim_common.phase_total r "compute" > 0.0)

(* ---------------- DMLL_DEBUG-style replan re-verification ---------------- *)

let test_replan_check_hook () =
  let count = ref 0 in
  let saved = !Fault.post_replan_check in
  Fault.post_replan_check :=
    Some
      (fun site e ->
        incr count;
        Dmll.verify_stage site e);
  Fun.protect
    ~finally:(fun () -> Fault.post_replan_check := saved)
    (fun () ->
      let inputs = [ ("xs", xs_val 4096) ] in
      let e =
        isum ~size:(Exp.Len xs_input) (fun i -> f2i (Exp.Read (xs_input, i)))
      in
      let expected = Interp.run ~inputs e in
      (* permanent-only chunk faults force lineage recovery on the domain
         executor, which must re-verify every recovered chunk program; the
         dynamic schedule's many chunks guarantee the deterministic draws
         include a permanent fault *)
      let perm_only =
        Fault.create
          { stress_spec with M.crash_prob = 0.5; crash_transient_frac = 0.0 }
      in
      (* under heavy parallel-test load the immune master thread can claim
         every chunk before the workers start, so no fault is ever drawn;
         retry until a recovery actually happened (bounded) *)
      let rec attempt k =
        check value "recovered run still exact" expected
          (Exec_domains.run ~domains:3 ~schedule:Exec_domains.Dynamic
             ~faults:perm_only ~inputs e);
        if !count = 0 && k < 5 then attempt (k + 1)
      in
      attempt 0;
      let domains_checks = !count in
      check tbool "domain recovery re-verified" true (domains_checks > 0);
      (* cluster replans re-verify their replacement chunk programs too *)
      let harsh = { stress_spec with M.crash_prob = 0.5 } in
      let _, r = cluster_run ~faults:harsh [ ("xs", xs_val 100_000) ] in
      ignore r;
      check tbool "cluster replan re-verified" true (!count > domains_checks))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fault"
    [ ( "spec",
        [ Alcotest.test_case "parse & round-trip" `Quick test_spec_parse;
          Alcotest.test_case "unknown key diagnostics" `Quick test_spec_diag;
          qt spec_roundtrip_prop;
          Alcotest.test_case "deterministic draws" `Quick test_draw_determinism;
        ] );
      ( "replan",
        [ Alcotest.test_case "coalesce" `Quick test_coalesce;
          Alcotest.test_case "boundary-aligned replan" `Quick test_replan_boundaries;
          qt prop_replan_covers;
        ] );
      ( "domains",
        [ Alcotest.test_case "bit-identical under injection" `Quick
            test_domains_bit_identical;
          qt prop_domains_faulty_random;
        ] );
      ( "dist-array",
        [ Alcotest.test_case "retry & degradation" `Quick
            test_read_retry_and_degradation;
        ] );
      ( "cluster",
        [ Alcotest.test_case "recovery phases" `Quick test_cluster_recovery_phases;
          Alcotest.test_case "deterministic replay" `Quick
            test_cluster_fault_determinism;
          Alcotest.test_case "1-node degenerate" `Quick
            test_single_node_no_collectives;
        ] );
      ( "debug",
        [ Alcotest.test_case "replan re-verification" `Quick test_replan_check_hook ];
      );
    ]

(* Tests of the static memory-footprint & liveness analysis and the
   liveness-driven early-free pass (DESIGN.md §13): the free-insertion
   pass must preserve semantics bit-for-bit on random programs, the
   W-DEAD-ARRAY lint must fire exactly on never-read partitioned
   collections, the admission decision table must cover its three
   outcomes, every application must uphold the M-MEM-OVERRUN contract
   (measured resident <= slack * predicted + floor, per loop) at several
   cluster sizes, and early-free must shrink both the predicted and the
   measured peaks on the iterated pipelines. *)

open Dmll_ir
open Exp
module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Interp = Dmll_interp.Interp
module Mem = Dmll_analysis.Mem
module Partition = Dmll_analysis.Partition
module Diag = Dmll_analysis.Diag
module Free_insertion = Dmll_opt.Free_insertion
module Metrics = Dmll_obs.Metrics
module Config = Dmll.Config

let check = Alcotest.check
let tbool = Alcotest.bool

(* ---------------- shared small inputs, one entry per app ------------- *)

let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 ()
let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data
let lr_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:5 ~classes:2 ()
let q1_table = Dmll_data.Tpch.generate ~rows:500 ()
let gene_reads = Dmll_data.Genes.generate ~reads:500 ~barcodes:20 ()

let pr_graph =
  Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ())

let tri_graph =
  Dmll_graph.Csr.of_edges
    (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:4 ()))

let knn_train = Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 ()
let knn_test = Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 ()
let nb_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 ()
let gibbs_graph = Dmll_data.Factor_graph.generate ~vars:50 ~factors:150 ()
let gibbs_state = Dmll_data.Factor_graph.initial_state gibbs_graph
let gibbs_rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 gibbs_graph

let apps : (string * exp * (string * V.t) list) list =
  let open Dmll_apps in
  [ ( "kmeans",
      Kmeans.program ~rows:60 ~cols:6 ~k:3 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "logreg",
      Logreg.program ~rows:50 ~cols:5 ~alpha:0.01 (),
      Logreg.inputs lr_data ~theta:(Array.make 5 0.1) );
    ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "tpch_q1",
      Tpch_q1.program (),
      Tpch_q1.aos_inputs q1_table @ Tpch_q1.soa_inputs q1_table );
    ( "gene",
      Gene.program (),
      Gene.aos_inputs gene_reads @ Gene.soa_inputs gene_reads );
    ( "pagerank_pull",
      Pagerank.program_pull ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ( "pagerank_push",
      Pagerank.program_push ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ("tricount", Tricount.program (), Tricount.inputs tri_graph);
    ( "knn",
      Knn.program ~train_rows:40 ~test_rows:12 ~cols:4 (),
      Knn.inputs ~train:knn_train ~test:knn_test );
    ( "naive_bayes",
      Naive_bayes.program ~rows:50 ~cols:4 (),
      Naive_bayes.inputs nb_data );
    ( "gibbs",
      Gibbs.program ~nvars:50 ~replicas:2 (),
      Gibbs.inputs gibbs_graph ~state:gibbs_state ~rand:gibbs_rand );
    ( "ridge",
      Ridge.program ~rows:50 ~cols:5 ~alpha:0.001 ~lambda:0.1 (),
      Ridge.inputs lr_data ~theta:(Array.make 5 0.2) );
  ]

let node_counts = [ 2; 5 ]

let config_for n =
  { R.Sim_cluster.default_config with cluster = M.with_nodes n M.ec2_cluster }

let with_validation f =
  let saved = !Mem.validate_enabled in
  Mem.validate_enabled := true;
  Fun.protect ~finally:(fun () -> Mem.validate_enabled := saved) f

let compile_seq program =
  Dmll.compile_with (Config.with_target Dmll.Sequential Config.default) program

let layout_of_program program =
  let layouts =
    (Partition.analyze ~transforms:[] ~reoptimize:Fun.id program)
      .Partition.layouts
  in
  fun t -> Partition.layout_of t layouts

let input_lens_of inputs =
  List.filter_map
    (fun (n, v) ->
      match v with V.Varr _ | V.Vmap _ -> Some (n, V.length v) | _ -> None)
    inputs

(* ---------------- the contract itself -------------------------------- *)

let test_contract_trips_on_overrun () =
  (* within slack: accepted *)
  Mem.check_measured ~site:"t" ~label:"loop0" ~predicted:1000.0 ~measured:1200.0;
  (* scalar-only resident under the floor: accepted *)
  Mem.check_measured ~site:"t" ~label:"loop0" ~predicted:0.0 ~measured:64.0;
  (* beyond slack + floor: M-MEM-OVERRUN *)
  match
    Mem.check_measured ~site:"t" ~label:"loop0" ~predicted:1000.0
      ~measured:((Mem.slack *. 1000.0) +. Mem.slack_floor_bytes +. 1.0)
  with
  | () -> Alcotest.fail "expected M-MEM-OVERRUN"
  | exception Diag.Failed { diags; _ } ->
      check tbool "rule id is M-MEM-OVERRUN" true
        (Diag.has_rule diags "M-MEM-OVERRUN")

(* ---------------- liveness windows and early-free --------------------- *)

(* xs --(collect a)--> a --(collect b)--> b --(sum)--> scalar:
   after free-insertion [a] must die right after its last use, while
   without the pass it stays resident to the end of the spine. *)
let chain_program () =
  let open Builder in
  let input = Input ("xs", Types.Arr Types.Float, Partitioned) in
  let a = Sym.fresh ~name:"a" (Types.Arr Types.Float) in
  let b = Sym.fresh ~name:"b" (Types.Arr Types.Float) in
  let mk_collect src =
    let i = Sym.fresh ~name:"i" Types.Int in
    Loop
      { size = Len src;
        idx = i;
        gens = [ Collect { cond = None; value = Read (src, Var i) *. float_ 2.0 } ];
      }
  in
  Let
    ( a,
      mk_collect input,
      Let (b, mk_collect (Var a), fsum ~size:(Len (Var b)) (fun i -> Read (Var b, i)))
    )

let find_live lives name =
  List.find_opt
    (fun (lv : Mem.live) ->
      match lv.Mem.target with
      | Dmll_analysis.Stencil.Tsym s -> Sym.name s = name
      | _ -> false)
    lives

let test_liveness_and_free () =
  let base = chain_program () in
  let layout_of = layout_of_program base in
  let plan = Mem.plan_of_program ~layout_of base in
  (match find_live plan.Mem.lives "a" with
  | None -> Alcotest.fail "no live entry for a"
  | Some lv ->
      check tbool "a not freed without the pass" false lv.Mem.freed;
      check tbool "a resident to the end" true
        (lv.Mem.dies_at = plan.Mem.spine_len));
  let fr = Free_insertion.run base in
  check tbool "free-insertion freed something" true (fr.Free_insertion.freed <> []);
  let freed_plan =
    Mem.plan_of_program ~layout_of:(layout_of_program fr.Free_insertion.program)
      fr.Free_insertion.program
  in
  (match find_live freed_plan.Mem.lives "a" with
  | None -> Alcotest.fail "no live entry for a after free-insertion"
  | Some lv ->
      check tbool "a freed by the pass" true lv.Mem.freed;
      check tbool "a dies before the end of the spine" true
        (lv.Mem.dies_at < freed_plan.Mem.spine_len);
      check tbool "a survives past its last use" true
        (lv.Mem.dies_at > lv.Mem.last_use));
  (* semantics unchanged, bit for bit *)
  let inputs = [ ("xs", V.of_float_array (Array.init 64 float_of_int)) ] in
  check tbool "interpreter value unchanged" true
    (V.equal (Interp.run ~inputs base) (Interp.run ~inputs fr.Free_insertion.program))

(* ---------------- W-DEAD-ARRAY --------------------------------------- *)

let test_dead_array_warning () =
  let open Builder in
  let input = Input ("xs", Types.Arr Types.Float, Partitioned) in
  let d = Sym.fresh ~name:"deadarr" (Types.Arr Types.Float) in
  let i = Sym.fresh ~name:"i" Types.Int in
  let materialize =
    Loop
      { size = Len input;
        idx = i;
        gens = [ Collect { cond = None; value = Read (input, Var i) *. float_ 2.0 } ];
      }
  in
  (* [d] is bound but never read *)
  let dead = Let (d, materialize, fsum ~size:(int_ 4) (fun j -> i2f j)) in
  let diags = Mem.dead_array_diags ~layout_of:(layout_of_program dead) dead in
  check tbool "W-DEAD-ARRAY fired" true (Diag.has_rule diags "W-DEAD-ARRAY");
  (* the same binding, consumed: no warning *)
  let live =
    Let (d, materialize, fsum ~size:(Len (Var d)) (fun j -> Read (Var d, j)))
  in
  check tbool "no warning when the array is read" true
    (Mem.dead_array_diags ~layout_of:(layout_of_program live) live = [])

(* ---------------- admission decision table ---------------------------- *)

let test_admission_table () =
  let name, program, inputs = List.nth apps 0 (* kmeans *) in
  let c = compile_seq program in
  let layout_of = layout_of_program c.Dmll.final in
  let input_lens = input_lens_of inputs in
  let summarize ?budget_gb () =
    Mem.summarize ~input_lens ?budget_gb ~layout_of c.Dmll.final
  in
  let s = summarize () in
  check tbool (name ^ " has divisible bytes at the peak") true
    (s.Mem.peak_divisible_bytes > 0.0);
  check tbool (name ^ " has fixed bytes at the peak") true
    (s.Mem.peak_fixed_bytes > 0.0);
  (* generous budget (the ec2 default, 15 GB): admitted as-is *)
  check tbool "generous budget admits" true (Mem.admit s = Mem.Admit);
  let fixed = s.Mem.peak_fixed_bytes and div = s.Mem.peak_divisible_bytes in
  (* headroom for a quarter of the divisible bytes: sub-chunk about 4x *)
  let squeezed = summarize ~budget_gb:((fixed +. (div /. 4.0)) /. 1e9) () in
  (match Mem.admit squeezed with
  | Mem.Chunk_smaller k ->
      check tbool "chunk factor between 2 and the cap" true
        (k >= 2 && k <= Mem.max_chunk_factor)
  | a ->
      Alcotest.failf "expected chunk-smaller, got %s" (Mem.admission_to_string a));
  (* headroom so thin the chunk factor would blow past the cap: spill *)
  let sliver =
    summarize
      ~budget_gb:((fixed +. (div /. float_of_int (4 * Mem.max_chunk_factor))) /. 1e9)
      ()
  in
  check tbool "over-cap chunk factor spills ahead" true
    (Mem.admit sliver = Mem.Spill_ahead);
  (* budget below even the fixed terms: spill *)
  let starved = summarize ~budget_gb:(fixed /. 2.0 /. 1e9) () in
  check tbool "budget under the fixed bytes spills ahead" true
    (Mem.admit starved = Mem.Spill_ahead)

(* ---------------- free-insertion preserves semantics (random) --------- *)

let prop_free_preserves_interp =
  QCheck.Test.make ~count:100 ~name:"free-insertion = identity (interpreter)"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          let fr = Free_insertion.run e in
          let got = Interp.run fr.Free_insertion.program in
          if V.equal expected got then true
          else
            QCheck.Test.fail_reportf "free-insertion changed semantics:@.%s@.%s vs %s"
              (Pp.to_string e) (V.to_string expected) (V.to_string got))

let prop_free_preserves_buckets =
  QCheck.Test.make ~count:60 ~name:"free-insertion = identity (bucket programs)"
    Dmll_testgen.Gen_ir.arbitrary_bucket_program (fun e ->
      match Interp.run e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          V.equal expected (Interp.run (Free_insertion.run e).Free_insertion.program))

let prop_free_preserves_cluster =
  QCheck.Test.make ~count:60
    ~name:"free-insertion = identity (simulated cluster, validation armed)"
    Dmll_testgen.Gen_ir.arbitrary_partitioned_program (fun e ->
      let inputs = [ ("xs", V.of_float_array (Array.init 96 float_of_int)) ] in
      match Interp.run ~inputs e with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          with_validation (fun () ->
              let fr = Free_insertion.run e in
              let run p =
                (R.Sim_cluster.run ~config:(config_for 3) ~inputs p)
                  .R.Sim_common.value
              in
              V.equal expected (run e) && V.equal expected (run fr.Free_insertion.program)))

(* ---------------- every app upholds the contract --------------------- *)

let test_apps_validated () =
  with_validation (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let c = compile_seq program in
          let reference =
            (R.Sim_cluster.run ~config:(config_for 1) ~inputs c.Dmll.final)
              .R.Sim_common.value
          in
          List.iter
            (fun n ->
              match R.Sim_cluster.run ~config:(config_for n) ~inputs c.Dmll.final with
              | r ->
                  check tbool
                    (Printf.sprintf "%s@%d nodes: value unchanged" name n)
                    true
                    (V.equal r.R.Sim_common.value reference)
              | exception Diag.Failed { stage; diags } ->
                  Alcotest.failf "%s@%d nodes: mem-plan overrun at %s: %s" name
                    n stage
                    (String.concat "; " (List.map Diag.to_string diags)))
            node_counts)
        apps)

(* ---------------- early-free shrinks predicted AND measured ----------- *)

let shrink_apps () =
  let open Dmll_apps in
  [ ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "kmeans_iter",
      Kmeans.program_iterated ~rows:60 ~cols:6 ~k:3 ~iters:4 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "pagerank_iter",
      Pagerank.program_pull_iterated ~nv:pr_graph.Dmll_graph.Csr.nv ~iters:4 (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
  ]

let measured_peak ~n ~inputs program =
  let r = R.Sim_cluster.run ~config:(config_for n) ~inputs program in
  Metrics.bytes r.R.Sim_common.metrics "peak_resident_bytes"

let test_early_free_shrinks_peaks () =
  with_validation (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let c = compile_seq program in
          let base = c.Dmll.final in
          let freed = (Free_insertion.run base).Free_insertion.program in
          let layout_of = layout_of_program base in
          let input_lens = input_lens_of inputs in
          let machine = M.with_nodes 4 M.ec2_cluster in
          let predicted =
            Mem.static_peak ~input_lens ~machine ~layout_of freed
          in
          let predicted_no_free =
            Mem.static_peak ~input_lens ~machine ~layout_of base
          in
          check tbool
            (Printf.sprintf "%s: predicted peak strictly shrinks (%.0f < %.0f)"
               name predicted predicted_no_free)
            true
            (predicted < predicted_no_free);
          let measured = measured_peak ~n:4 ~inputs freed in
          let measured_no_free = measured_peak ~n:4 ~inputs base in
          check tbool
            (Printf.sprintf "%s: measured peak shrinks too (%.0f <= %.0f)" name
               measured measured_no_free)
            true
            (measured <= measured_no_free);
          (* the simulated values stay identical with the frees in *)
          check tbool (name ^ ": value unchanged under early-free") true
            (V.equal
               (R.Sim_cluster.run ~config:(config_for 4) ~inputs freed)
                 .R.Sim_common.value
               (R.Sim_cluster.run ~config:(config_for 4) ~inputs base)
                 .R.Sim_common.value))
        (shrink_apps ()))

(* ---------------- --explain-mem --json golden schema ------------------ *)

open Dmll_testgen.Json_check

let tkeys = Alcotest.(list string)

let test_explain_mem_json_schema () =
  (* reproduce dmllc --explain-mem kmeans_tiny --json --nodes 4
     in-process *)
  let machine = M.with_nodes 4 M.ec2_cluster in
  let input_lens = [ ("matrix", 256); ("clusters", 16) ] in
  let source = Dmll_apps.Kmeans.program ~rows:64 ~cols:4 ~k:4 () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] source)
      .Dmll_opt.Pipeline.program
  in
  let report =
    Partition.analyze ~transforms:Dmll_opt.Rules_nested.cpu_rules ~machine
      ~input_lens generic
  in
  let layout_of t = Partition.layout_of t report.Partition.layouts in
  let base = report.Partition.program in
  let fr = Free_insertion.run base in
  let summary =
    Mem.summarize ~input_lens ~machine ~layout_of fr.Free_insertion.program
  in
  let peak_no_free = Mem.static_peak ~input_lens ~machine ~layout_of base in
  let admission = Mem.admit summary in
  let json =
    Mem.summary_to_json ~app:"kmeans_tiny" ~admission ~peak_no_free summary
  in
  let doc = parse json in
  check tkeys "top-level keys"
    [ "app"; "nodes"; "budget_bytes"; "liveness"; "residents"; "peak_bytes";
      "peak_loop"; "peak_no_free_bytes"; "over_budget"; "admission" ]
    (keys_of doc);
  check Alcotest.string "app name" "kmeans_tiny" (str (field doc "app"));
  check (Alcotest.float 0.0) "nodes" 4.0 (num (field doc "nodes"));
  check tbool "budget is the ec2 node budget" true
    (num (field doc "budget_bytes") > 0.0);
  List.iter
    (fun lv ->
      check tkeys "liveness keys"
        [ "target"; "layout"; "bound_at"; "last_use"; "freed_at"; "dead";
          "resident_bytes" ]
        (keys_of lv);
      check tbool "layout is known" true
        (List.mem (str (field lv "layout")) [ "partitioned"; "local" ]);
      (match field lv "freed_at" with
      | Jnum _ | Jnull -> ()
      | _ -> Alcotest.fail "freed_at must be a number or null");
      check tbool "no dead arrays in kmeans_tiny" false
        (boolean (field lv "dead")))
    (arr (field doc "liveness"));
  let residents = arr (field doc "residents") in
  check tbool "kmeans_tiny has spine rows" true (residents <> []);
  List.iter
    (fun row ->
      check tkeys "resident row keys"
        [ "position"; "label"; "distributed"; "persistent_bytes";
          "transient_bytes"; "resident_bytes"; "terms" ]
        (keys_of row);
      (match field row "distributed" with
      | Jbool _ | Jnull -> ()
      | _ -> Alcotest.fail "distributed must be a bool or null");
      List.iter
        (fun t ->
          check tkeys "term keys" [ "kind"; "target"; "formula"; "bytes"; "note" ]
            (keys_of t);
          check tbool "term kind is known" true
            (List.mem (str (field t "kind"))
               [ "broadcast-copy"; "replica"; "halo"; "partials" ]);
          ignore (num (field t "bytes")))
        (arr (field row "terms")))
    residents;
  (* sym-independent pinned values *)
  check Alcotest.string "admission" "admit" (str (field doc "admission"));
  check tbool "not over budget" false (boolean (field doc "over_budget"));
  let peak = num (field doc "peak_bytes") in
  check tbool "peak is positive" true (peak > 0.0);
  check tbool "peak <= peak without early-free" true
    (peak <= num (field doc "peak_no_free_bytes"))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mem"
    [ ( "contract",
        [ Alcotest.test_case "slack and overrun" `Quick test_contract_trips_on_overrun ] );
      ( "liveness",
        [ Alcotest.test_case "windows and early-free" `Quick test_liveness_and_free;
          Alcotest.test_case "dead-array warning" `Quick test_dead_array_warning;
        ] );
      ( "admission",
        [ Alcotest.test_case "decision table" `Quick test_admission_table ] );
      ( "free-insertion",
        [ qt prop_free_preserves_interp;
          qt prop_free_preserves_buckets;
          qt prop_free_preserves_cluster;
        ] );
      ( "cluster",
        [ Alcotest.test_case "all apps validated at 2 and 5 nodes" `Slow
            test_apps_validated;
          Alcotest.test_case "early-free shrinks predicted and measured peaks"
            `Quick test_early_free_shrinks_peaks;
        ] );
      ( "explain-json",
        [ Alcotest.test_case "golden schema for kmeans_tiny" `Quick
            test_explain_mem_json_schema;
        ] );
    ]

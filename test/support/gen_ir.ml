(** Random well-typed DMLL program generation for property-based tests.

    The generator produces closed, well-typed expressions that always
    evaluate without runtime errors (indices are clamped, divisions
    guarded, reductions restricted to associative-commutative operators so
    that chunked parallel evaluation is equivalent to sequential
    evaluation up to float rounding).  Semantic-preservation properties
    for every optimization pass are stated over these programs. *)

open Dmll_ir
open Exp

type env = (Sym.t * Types.ty) list

let gen_return = QCheck.Gen.return
let ( let* ) = QCheck.Gen.( let* )

(* Variables of type [ty] available in [env]. *)
let vars_of env ty =
  List.filter_map (fun (s, t) -> if Types.equal t ty then Some (Var s) else None) env

(* A total read: guarded against empty arrays (a conditional Collect can
   produce zero elements) and with the index clamped into bounds. *)
let safe_read ~default arr idx =
  let open Builder in
  if_ (Len arr =! int_ 0) default (Read (arr, imax_ (int_ 0) idx %! Len arr))

let int_leaf env : exp QCheck.Gen.t =
  let open QCheck.Gen in
  let consts = map (fun i -> int_ i) (int_range (-20) 20) in
  match vars_of env Types.Int with
  | [] -> consts
  | vs -> oneof [ consts; oneofl vs ]

let float_leaf env : exp QCheck.Gen.t =
  let open QCheck.Gen in
  let consts = map (fun f -> float_ (Float.of_int f /. 4.0)) (int_range (-40) 40) in
  match vars_of env Types.Float with
  | [] -> consts
  | vs -> oneof [ consts; oneofl vs ]

let bool_leaf env : exp QCheck.Gen.t =
  let open QCheck.Gen in
  let consts = map (fun b -> bool_ b) bool in
  match vars_of env Types.Bool with
  | [] -> consts
  | vs -> oneof [ consts; oneofl vs ]

(* [gen_exp env ty fuel] generates an expression of type [ty]. *)
let rec gen_exp (env : env) (ty : Types.ty) (fuel : int) : exp QCheck.Gen.t =
  let open QCheck.Gen in
  if fuel <= 0 then gen_leaf env ty
  else
    match ty with
    | Types.Int ->
        let arr_reads =
          match vars_of env (Types.Arr Types.Int) with
          | [] -> []
          | vs ->
              [ (let* a = oneofl vs in
                 let* i = gen_exp env Types.Int (fuel / 2) in
                 gen_return (safe_read ~default:(Exp.int_ 0) a i));
              ]
        in
        oneof
          ([ gen_leaf env ty;
             (let* p = oneofl Prim.[ Add; Sub; Mul; Min; Max ] in
              let* a = gen_exp env Types.Int (fuel / 2) in
              let* b = gen_exp env Types.Int (fuel / 2) in
              gen_return (Prim (p, [ a; b ])));
             gen_if env ty fuel;
             gen_let env ty fuel;
             gen_isum env fuel;
           ]
          @ arr_reads)
    | Types.Float ->
        let arr_reads =
          match vars_of env (Types.Arr Types.Float) with
          | [] -> []
          | vs ->
              [ (let* a = oneofl vs in
                 let* i = gen_exp env Types.Int (fuel / 2) in
                 gen_return (safe_read ~default:(Exp.float_ 0.0) a i));
              ]
        in
        oneof
          ([ gen_leaf env ty;
             (let* p = oneofl Prim.[ Fadd; Fsub; Fmul; Fmin; Fmax ] in
              let* a = gen_exp env Types.Float (fuel / 2) in
              let* b = gen_exp env Types.Float (fuel / 2) in
              gen_return (Prim (p, [ a; b ])));
             gen_if env ty fuel;
             gen_let env ty fuel;
             gen_fsum env fuel;
           ]
          @ arr_reads)
    | Types.Bool ->
        oneof
          [ gen_leaf env ty;
            (let* p = oneofl Prim.[ Eq; Ne; Lt; Le; Gt; Ge ] in
             let* a = gen_exp env Types.Int (fuel / 2) in
             let* b = gen_exp env Types.Int (fuel / 2) in
             gen_return (Prim (p, [ a; b ])));
            (let* p = oneofl Prim.[ And; Or ] in
             let* a = gen_exp env Types.Bool (fuel / 2) in
             let* b = gen_exp env Types.Bool (fuel / 2) in
             gen_return (Prim (p, [ a; b ])));
          ]
    | Types.Arr Types.Float -> gen_collect env Types.Float fuel
    | Types.Arr Types.Int -> gen_collect env Types.Int fuel
    | _ -> gen_leaf env ty

and gen_leaf env ty : exp QCheck.Gen.t =
  let open QCheck.Gen in
  match ty with
  | Types.Int -> int_leaf env
  | Types.Float -> float_leaf env
  | Types.Bool -> bool_leaf env
  | Types.Arr elt -> (
      match vars_of env ty with
      | [] ->
          (* a small constant collect *)
          let* n = int_range 1 5 in
          let* body = gen_leaf env elt in
          gen_return (Builder.collect ~size:(int_ n) (fun _ -> body))
      | vs -> oneofl vs)
  | _ -> QCheck.Gen.return unit_

and gen_if env ty fuel =
  let* c = gen_exp env Types.Bool (fuel / 3) in
  let* t = gen_exp env ty (fuel / 2) in
  let* e = gen_exp env ty (fuel / 2) in
  gen_return (If (c, t, e))

and gen_let env ty fuel =
  let open QCheck.Gen in
  let* bty = oneofl [ Types.Int; Types.Float; Types.Arr Types.Float ] in
  let* bound = gen_exp env bty (fuel / 2) in
  let s = Sym.fresh ~name:"g" bty in
  let* body = gen_exp ((s, bty) :: env) ty (fuel / 2) in
  gen_return (Let (s, bound, body))

and gen_collect env elt fuel =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let idx = Sym.fresh ~name:"i" Types.Int in
  let env' = (idx, Types.Int) :: env in
  let* value = gen_exp env' elt (fuel / 2) in
  let* with_cond = bool in
  let* cond =
    if with_cond then
      let* c = gen_exp env' Types.Bool (fuel / 3) in
      gen_return (Some c)
    else gen_return None
  in
  gen_return (Loop { size = int_ n; idx; gens = [ Collect { cond; value } ] })

and gen_fsum env fuel =
  let* n = QCheck.Gen.int_range 1 8 in
  (* any associative-commutative float reduction with its identity: chunked
     parallel evaluation stays equivalent to sequential evaluation *)
  let* op, init =
    QCheck.Gen.oneofl
      [ (Prim.Fadd, float_ 0.0);
        (Prim.Fmin, float_ infinity);
        (Prim.Fmax, float_ neg_infinity);
      ]
  in
  let idx = Sym.fresh ~name:"i" Types.Int in
  let env' = (idx, Types.Int) :: env in
  let* value = gen_exp env' Types.Float (fuel / 2) in
  let a = Sym.fresh ~name:"a" Types.Float and b = Sym.fresh ~name:"b" Types.Float in
  gen_return
    (Loop
       { size = int_ n;
         idx;
         gens =
           [ Reduce
               { cond = None; value; a; b; rfun = Prim (op, [ Var a; Var b ]); init };
           ];
       })

and gen_isum env fuel =
  let* n = QCheck.Gen.int_range 1 8 in
  let idx = Sym.fresh ~name:"i" Types.Int in
  let env' = (idx, Types.Int) :: env in
  let* value = gen_exp env' Types.Int (fuel / 2) in
  let a = Sym.fresh ~name:"a" Types.Int and b = Sym.fresh ~name:"b" Types.Int in
  gen_return
    (Loop
       { size = int_ n;
         idx;
         gens =
           [ Reduce
               { cond = None;
                 value;
                 a;
                 b;
                 rfun = Prim (Prim.Add, [ Var a; Var b ]);
                 init = int_ 0;
               };
           ];
       })

(** A closed program of scalar or array type, with nested loops. *)
let program : exp QCheck.Gen.t =
  let open QCheck.Gen in
  let* ty =
    oneofl [ Types.Int; Types.Float; Types.Arr Types.Float; Types.Arr Types.Int ]
  in
  let* fuel = int_range 4 24 in
  gen_exp [] ty fuel

(** A closed program together with a bucket-reduce at the top, exercising
    the grouping generators. *)
let bucket_program : exp QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 16 in
  let* k = int_range 1 4 in
  let idx = Sym.fresh ~name:"i" Types.Int in
  let* value = gen_exp [ (idx, Types.Int) ] Types.Float 6 in
  let a = Sym.fresh ~name:"a" Types.Float and b = Sym.fresh ~name:"b" Types.Float in
  let open Builder in
  gen_return
    (Loop
       { size = int_ n;
         idx;
         gens =
           [ BucketReduce
               { cond = None;
                 key = Var idx %! int_ k;
                 value;
                 a;
                 b;
                 rfun = Var a +. Var b;
                 init = float_ 0.0;
               };
           ];
       })

let arbitrary_program =
  QCheck.make ~print:(fun e -> Pp.to_string e) program

let arbitrary_bucket_program =
  QCheck.make ~print:(fun e -> Pp.to_string e) bucket_program

(** A closed program that owns a partitioned input "xs": the wrapper loop
    materializes [2 * xs] (an Interval sweep over the partitioned input,
    hence a distributed loop under the cluster executors), and the
    generated body may read the bound array.  Used by the recovery
    property tests and the chaos-soak harness so that every program
    exercises partitioned data, fault injection, and churn. *)
let partitioned_program : exp QCheck.Gen.t =
  let* ty =
    QCheck.Gen.oneofl
      [ Types.Int; Types.Float; Types.Arr Types.Float; Types.Arr Types.Int ]
  in
  let* fuel = QCheck.Gen.int_range 4 20 in
  let xs = Sym.fresh ~name:"soakxs" (Types.Arr Types.Float) in
  let* body = gen_exp [ (xs, Types.Arr Types.Float) ] ty fuel in
  let input = Input ("xs", Types.Arr Types.Float, Partitioned) in
  let i = Sym.fresh ~name:"i" Types.Int in
  let materialize =
    Loop
      { size = Len input;
        idx = i;
        gens =
          [ Collect
              { cond = None;
                value = Builder.( *. ) (Read (input, Var i)) (float_ 2.0);
              }
          ];
      }
  in
  gen_return (Let (xs, materialize, body))

let arbitrary_partitioned_program =
  QCheck.make ~print:(fun e -> Pp.to_string e) partitioned_program

(** A dependency-free recursive-descent JSON reader for golden schema
    tests: just enough to pin the shape of the [--explain-comm] /
    [--explain-mem] documents so downstream tooling can rely on them.
    Symbol names inside the documents are gensym-dependent, so tests
    built on this check structure (exact key sets, value types) and the
    sym-independent values, not the raw strings. *)

type j =
  | Jobj of (string * j) list
  | Jarr of j list
  | Jstr of string
  | Jnum of float
  | Jbool of bool
  | Jnull

let parse (s : string) : j =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then
      Alcotest.failf "json: expected %C at %d, got %C" c !pos (peek ());
    advance ()
  in
  let lit word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else Alcotest.failf "json: bad literal at %d" !pos
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | '\000' -> Alcotest.fail "json: unterminated string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < len
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Jobj [] end
        else
          let rec fields acc =
            let k = (skip_ws (); string_body ()) in
            expect ':';
            let v = value () in
            skip_ws ();
            if peek () = ',' then begin advance (); fields ((k, v) :: acc) end
            else begin expect '}'; List.rev ((k, v) :: acc) end
          in
          Jobj (fields [])
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Jarr [] end
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            if peek () = ',' then begin advance (); items (v :: acc) end
            else begin expect ']'; List.rev (v :: acc) end
          in
          Jarr (items [])
    | '"' -> Jstr (string_body ())
    | 't' -> lit "true" (Jbool true)
    | 'f' -> lit "false" (Jbool false)
    | 'n' -> lit "null" Jnull
    | _ -> Jnum (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then Alcotest.failf "json: trailing garbage at %d" !pos;
  v

let keys_of = function
  | Jobj fields -> List.map fst fields
  | _ -> Alcotest.fail "json: expected an object"

let field o k =
  match o with
  | Jobj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> Alcotest.failf "json: missing key %S" k)
  | _ -> Alcotest.failf "json: expected an object holding %S" k

let num = function Jnum f -> f | _ -> Alcotest.fail "json: expected a number"
let str = function Jstr s -> s | _ -> Alcotest.fail "json: expected a string"
let arr = function Jarr l -> l | _ -> Alcotest.fail "json: expected an array"

let boolean = function
  | Jbool b -> b
  | _ -> Alcotest.fail "json: expected a bool"

(* Process-backed executor tests (DESIGN.md §14).

   The contract under test: forked workers murdered at random points —
   real SIGKILLs, SIGSTOP straggling, severed pipes — change the
   supervision counters but NEVER the computed value; recovery rides the
   same lineage/replan path as every simulated executor; and the run
   always terminates with every child reaped and every pipe closed, on
   both the success and the parent-error paths. *)

open Dmll_ir
open Dmll_interp
open Dmll_runtime
open Exp
open Builder
module M = Dmll_machine.Machine

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let xs_input = Exp.Input ("xs", Types.Arr Types.Float, Exp.Partitioned)

let xs_val n =
  Value.of_float_array (Array.init n (fun i -> float_of_int (i mod 17)))

(* Integer reduction: merge order cannot hide behind float rounding, so
   every comparison below is bit-exact. *)
let int_prog =
  isum ~size:(Exp.Len xs_input) (fun i -> f2i (Exp.Read (xs_input, i)) *! int_ 3)

(* A two-loop spine: a distributed collect feeding a distributed int
   reduce, with scalar glue at the end. *)
let spine_prog =
  let ys = Sym.fresh ~name:"ys" (Types.Arr Types.Float) in
  let s = Sym.fresh ~name:"s" Types.Int in
  Exp.Let
    ( ys,
      collect ~size:(len xs_input) (fun i -> read xs_input i *. float_ 2.0),
      Exp.Let
        ( s,
          isum ~size:(len (Exp.Var ys)) (fun i -> f2i (read (Exp.Var ys) i)),
          Exp.Var s +! int_ 1 ) )

(* A murder-heavy but fully recoverable regime: every injected kill is
   transient (respawnable), no stragglers, so the schedule of deaths —
   and therefore the counters — is deterministic. *)
let murder_spec =
  { M.default_faults with
    M.fault_seed = 2026;
    crash_prob = 0.3;
    crash_transient_frac = 1.0;
    straggler_prob = 0.0;
    max_retries = 2;
    backoff_us = 50.0;
  }

let proc_config ?faults ?(workers = 3) ?(heartbeat_s = 0.05) () =
  { Proc_cluster.default_config with Proc_cluster.workers; faults; heartbeat_s }

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let pid_gone pid =
  match Unix.kill pid 0 with
  | () -> false
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
  | exception _ -> true

(* No child of this process is left — running or zombie.  If the
   executor leaked one, waitpid either reports it or reaps a zombie;
   both fail the assertion. *)
let no_children () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | _ -> false

let assert_clean (tag : string) (stats : Proc_cluster.stats) =
  check tbool (tag ^ ": workers were forked") true (stats.Proc_cluster.pids <> []);
  List.iter
    (fun pid ->
      check tbool (Printf.sprintf "%s: pid %d gone" tag pid) true (pid_gone pid))
    stats.Proc_cluster.pids;
  check tbool (tag ^ ": no zombies or stray children") true (no_children ())

(* ---------------- healthy runs ---------------- *)

let test_healthy_bit_identical () =
  let inputs = [ ("xs", xs_val 1009) ] in
  let fds_before = open_fds () in
  let expected = Interp.run ~inputs int_prog in
  let r = Proc_cluster.run ~config:(proc_config ()) ~inputs int_prog in
  check value "proc = interpreter" expected r.Proc_cluster.value;
  let r2 = Proc_cluster.run ~config:(proc_config ()) ~inputs spine_prog in
  check value "spine proc = interpreter" (Interp.run ~inputs spine_prog)
    r2.Proc_cluster.value;
  assert_clean "healthy" r.Proc_cluster.stats;
  assert_clean "healthy spine" r2.Proc_cluster.stats;
  check tint "fds restored" fds_before (open_fds ());
  (* idle workers answered the loop-boundary heartbeats *)
  check tbool "pings sent" true (r2.Proc_cluster.stats.Proc_cluster.pings > 0)

(* ---------------- murder mid-loop ---------------- *)

let test_kill_recovers_bit_identical () =
  let inputs = [ ("xs", xs_val 997) ] in
  let healthy =
    (Proc_cluster.run ~config:(proc_config ()) ~inputs spine_prog)
      .Proc_cluster.value
  in
  let injected = ref 0 in
  for seed = 0 to 4 do
    let fault = Fault.create { murder_spec with M.fault_seed = 41 + seed } in
    let r =
      Proc_cluster.run ~config:(proc_config ~faults:fault ()) ~inputs spine_prog
    in
    check value
      (Printf.sprintf "seed %d: murdered run = healthy run" seed)
      healthy r.Proc_cluster.value;
    let s = r.Proc_cluster.stats in
    injected :=
      !injected + s.Proc_cluster.killed + s.Proc_cluster.worker_retries;
    (* recovery went through the lineage/replan path *)
    if s.Proc_cluster.killed > 0 then
      check tbool
        (Printf.sprintf "seed %d: kills were replanned" seed)
        true
        (s.Proc_cluster.recovered_chunks > 0 || s.Proc_cluster.master_chunks > 0);
    assert_clean (Printf.sprintf "murder seed %d" seed) s
  done;
  check tbool "murders actually happened" true (!injected > 0)

(* ---------------- the twelve apps under process murder ---------------- *)

let apps : (string * Exp.exp * (string * Value.t) list) list =
  let open Dmll_apps in
  let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 () in
  let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data in
  let lr_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:5 ~classes:2 () in
  let q1_table = Dmll_data.Tpch.generate ~rows:500 () in
  let gene_reads = Dmll_data.Genes.generate ~reads:500 ~barcodes:20 () in
  let pr_graph =
    Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ())
  in
  let tri_graph =
    Dmll_graph.Csr.of_edges
      (Dmll_data.Rmat.symmetrize
         (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:4 ()))
  in
  let knn_train =
    Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 ()
  in
  let knn_test =
    Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 ()
  in
  let nb_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 () in
  let gibbs_graph = Dmll_data.Factor_graph.generate ~vars:50 ~factors:150 () in
  let gibbs_state = Dmll_data.Factor_graph.initial_state gibbs_graph in
  let gibbs_rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 gibbs_graph in
  [ ( "kmeans",
      Kmeans.program ~rows:60 ~cols:6 ~k:3 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "logreg",
      Logreg.program ~rows:50 ~cols:5 ~alpha:0.01 (),
      Logreg.inputs lr_data ~theta:(Array.make 5 0.1) );
    ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "tpch_q1",
      Tpch_q1.program (),
      Tpch_q1.aos_inputs q1_table @ Tpch_q1.soa_inputs q1_table );
    ( "gene",
      Gene.program (),
      Gene.aos_inputs gene_reads @ Gene.soa_inputs gene_reads );
    ( "pagerank_pull",
      Pagerank.program_pull ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ( "pagerank_push",
      Pagerank.program_push ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ("tricount", Tricount.program (), Tricount.inputs tri_graph);
    ( "knn",
      Knn.program ~train_rows:40 ~test_rows:12 ~cols:4 (),
      Knn.inputs ~train:knn_train ~test:knn_test );
    ( "naive_bayes",
      Naive_bayes.program ~rows:50 ~cols:4 (),
      Naive_bayes.inputs nb_data );
    ( "gibbs",
      Gibbs.program ~nvars:50 ~replicas:2 (),
      Gibbs.inputs gibbs_graph ~state:gibbs_state ~rand:gibbs_rand );
    ( "ridge",
      Ridge.program ~rows:50 ~cols:5 ~alpha:0.001 ~lambda:0.1 (),
      Ridge.inputs lr_data ~theta:(Array.make 5 0.2) );
  ]

let test_apps_single_kill () =
  let killed_total = ref 0 in
  List.iteri
    (fun i (name, program, inputs) ->
      let c = Dmll.compile_with Dmll.Config.default program in
      let reference = (Dmll.execute Dmll.Config.default c ~inputs).Dmll.value in
      let healthy =
        (Proc_cluster.run ~config:(proc_config ()) ~inputs c.Dmll.final)
          .Proc_cluster.value
      in
      (* proc vs sequential: bit-identical for exact merges, float-merge
         identical (1e-6) where chunked float reduces reassociate *)
      check tbool
        (name ^ ": proc matches sequential")
        true
        (Value.equal healthy reference
        || Value.approx_equal ~eps:1e-6 reference healthy);
      let fault =
        Fault.create
          { murder_spec with M.fault_seed = 100 + i; crash_prob = 0.2 }
      in
      let r =
        Proc_cluster.run ~config:(proc_config ~faults:fault ()) ~inputs
          c.Dmll.final
      in
      (* the robustness headline: killing workers never changes the value *)
      check value (name ^ ": murdered = healthy, bit-identical") healthy
        r.Proc_cluster.value;
      killed_total := !killed_total + r.Proc_cluster.stats.Proc_cluster.killed;
      assert_clean name r.Proc_cluster.stats)
    apps;
  check tbool "at least one worker was killed across the sweep" true
    (!killed_total > 0)

(* ---------------- hung workers: deadline detection ---------------- *)

let test_hung_worker_deadline () =
  let inputs = [ ("xs", xs_val 503) ] in
  let healthy =
    (Proc_cluster.run ~config:(proc_config ()) ~inputs spine_prog)
      .Proc_cluster.value
  in
  (* every chunk's first dispatch SIGSTOPs its worker for ~0.25 s; the
     80 ms task deadline must fire first, kill, and replan *)
  let spec =
    { M.default_faults with
      M.fault_seed = 7;
      crash_prob = 0.0;
      straggler_prob = 1.0;
      straggler_slowdown = 30.0;
    }
  in
  let fault = Fault.create spec in
  let config =
    { (proc_config ~faults:fault ()) with Proc_cluster.task_deadline_s = 0.08 }
  in
  let r = Proc_cluster.run ~config ~inputs spine_prog in
  check value "hung workers: value unchanged" healthy r.Proc_cluster.value;
  let s = r.Proc_cluster.stats in
  check tbool "workers were stopped" true (s.Proc_cluster.stopped > 0);
  check tbool "deadline fired" true (s.Proc_cluster.deadline_kills > 0);
  check tbool "hung chunks were replanned" true (s.Proc_cluster.replans > 0);
  assert_clean "deadline" s

(* ---------------- wedged-idle workers: heartbeat detection ------------ *)

let test_heartbeat_kill () =
  let inputs = [ ("xs", xs_val 401) ] in
  let healthy =
    (Proc_cluster.run ~config:(proc_config ()) ~inputs spine_prog)
      .Proc_cluster.value
  in
  (* wedge slot 1 before it ever answers: the loop-boundary liveness
     gate must miss three pongs, kill it, and respawn a replacement *)
  let wedged = ref false in
  let on_spawn ~slot ~pid =
    if slot = 1 && not !wedged then begin
      wedged := true;
      Unix.kill pid Sys.sigstop
    end
  in
  let config =
    { (proc_config ~heartbeat_s:0.03 ()) with
      Proc_cluster.on_spawn = Some on_spawn }
  in
  let r = Proc_cluster.run ~config ~inputs spine_prog in
  check value "wedged idle worker: value unchanged" healthy
    r.Proc_cluster.value;
  let s = r.Proc_cluster.stats in
  check tbool "heartbeat kill fired" true (s.Proc_cluster.heartbeat_kills > 0);
  check tbool "replacement spawned" true (s.Proc_cluster.respawned > 0);
  assert_clean "heartbeat" s

(* ---------------- killed between task send and first reply ------------ *)

let test_kill_between_send_and_reply () =
  let inputs = [ ("xs", xs_val 601) ] in
  let healthy =
    (Proc_cluster.run ~config:(proc_config ()) ~inputs spine_prog)
      .Proc_cluster.value
  in
  (* murder a worker in the race window the supervisor cannot see into:
     its task frame has been written, but no reply — and no heartbeat —
     has come back yet.  Detection must come from the dead pipe or the
     deadline, and recovery must not change the value. *)
  let pids = Array.make 8 0 in
  let killed_once = ref false in
  let on_spawn ~slot ~pid = pids.(slot) <- pid in
  let on_task_sent ~slot ~chunk:_ =
    if (not !killed_once) && pids.(slot) <> 0 then begin
      killed_once := true;
      Unix.kill pids.(slot) Sys.sigkill
    end
  in
  let config =
    { (proc_config ()) with
      Proc_cluster.on_spawn = Some on_spawn;
      on_task_sent = Some on_task_sent;
    }
  in
  let r = Proc_cluster.run ~config ~inputs spine_prog in
  check tbool "the kill landed in the race window" true !killed_once;
  check value "kill between send and reply: value unchanged" healthy
    r.Proc_cluster.value;
  let s = r.Proc_cluster.stats in
  check tbool "loss was detected and recovered" true
    (s.Proc_cluster.respawned > 0
    || s.Proc_cluster.replans > 0
    || s.Proc_cluster.recovered_chunks > 0
    || s.Proc_cluster.master_chunks > 0);
  assert_clean "send-race" s

(* ---------------- reaping on the parent-error path ---------------- *)

let test_reaping_after_parent_error () =
  let inputs = [ ("xs", xs_val 256) ] in
  (* distributed loop succeeds, then the master's scalar glue reads out
     of bounds: run raises, but children must still be reaped *)
  let ys = Sym.fresh ~name:"ys" (Types.Arr Types.Float) in
  let raising_prog =
    Exp.Let
      ( ys,
        collect ~size:(len xs_input) (fun i -> read xs_input i *. float_ 2.0),
        read (Exp.Var ys) (int_ 999_999_999) )
  in
  let fds_before = open_fds () in
  (match Proc_cluster.run ~config:(proc_config ()) ~inputs raising_prog with
  | _ -> Alcotest.fail "expected the program to raise"
  | exception _ -> ());
  check tbool "no zombies after parent error" true (no_children ());
  check tint "fds restored after parent error" fds_before (open_fds ())

(* ---------------- deterministic replay ---------------- *)

let test_replay_determinism () =
  let inputs = [ ("xs", xs_val 769) ] in
  let go () =
    let fault = Fault.create murder_spec in
    let r =
      Proc_cluster.run ~config:(proc_config ~faults:fault ()) ~inputs spine_prog
    in
    let s = r.Proc_cluster.stats in
    ( r.Proc_cluster.value,
      s.Proc_cluster.killed,
      s.Proc_cluster.recovered_chunks,
      s.Proc_cluster.respawned )
  in
  let v1, k1, r1, sp1 = go () in
  let v2, k2, r2, sp2 = go () in
  check value "replay: same value" v1 v2;
  check tint "replay: same kill schedule" k1 k2;
  check tint "replay: same recovered chunks" r1 r2;
  check tint "replay: same respawns" sp1 sp2

let test_worker_seed_rule () =
  (* the documented derivation: pure in (fault_seed, slot), stable for a
     respawned slot, distinct across slots, moved by the seed *)
  check tint "stable for a slot"
    (Fault.worker_seed murder_spec ~worker:3)
    (Fault.worker_seed murder_spec ~worker:3);
  let seeds = List.init 8 (fun k -> Fault.worker_seed murder_spec ~worker:k) in
  check tint "distinct across slots" 8
    (List.length (List.sort_uniq compare seeds));
  check tbool "fault seed moves every slot" true
    (List.for_all2 ( <> ) seeds
       (List.init 8 (fun k ->
            Fault.worker_seed { murder_spec with M.fault_seed = 1 } ~worker:k)))

let test_proc_fate_deterministic () =
  let f1 = Fault.create murder_spec in
  let f2 = Fault.create murder_spec in
  for loop = 1 to 5 do
    for chunk = 0 to 19 do
      if Fault.proc_fate f1 ~loop ~chunk <> Fault.proc_fate f2 ~loop ~chunk
      then Alcotest.failf "proc fate diverged at loop %d chunk %d" loop chunk
    done
  done;
  let f3 = Fault.create { murder_spec with M.fault_seed = 1 } in
  let differs = ref false in
  for loop = 1 to 5 do
    for chunk = 0 to 19 do
      if Fault.proc_fate f1 ~loop ~chunk <> Fault.proc_fate f3 ~loop ~chunk
      then differs := true
    done
  done;
  check tbool "seed changes the murder schedule" true !differs

(* ---------------- crash-safe checkpoint files ---------------- *)

let with_ckpt_dir (f : string -> unit) : unit =
  let dir = Printf.sprintf "_proc_ckpt_%d" (Unix.getpid ()) in
  let wipe () =
    if Sys.file_exists dir then begin
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  wipe ();
  Fun.protect ~finally:wipe (fun () -> f dir)

let test_checkpoint_files () =
  with_ckpt_dir (fun dir ->
      let inputs = [ ("xs", xs_val 333) ] in
      let config =
        { (proc_config ()) with
          Proc_cluster.checkpoint_cadence = 1;
          checkpoint_dir = Some dir }
      in
      let r = Proc_cluster.run ~config ~inputs spine_prog in
      check tbool "snapshots taken" true
        (r.Proc_cluster.stats.Proc_cluster.checkpoints >= 2);
      let entries = Array.to_list (Sys.readdir dir) in
      check tbool "committed snapshots on disk" true
        (List.exists (fun f -> Filename.check_suffix f ".snap") entries);
      check tbool "no torn .tmp left behind" true
        (not (List.exists (fun f -> Filename.check_suffix f ".tmp") entries));
      (* the newest committed snapshot verifies *)
      let path =
        match Checkpoint.latest_file ~dir with
        | Some p -> p
        | None -> Alcotest.fail "no committed snapshot found"
      in
      (match Checkpoint.read_file path with
      | Checkpoint.Available s ->
          check tbool "restored at the last loop" true
            (s.Checkpoint.at_loop >= 2)
      | Checkpoint.Corrupt m -> Alcotest.failf "snapshot corrupt: %s" m
      | Checkpoint.None_taken -> Alcotest.fail "snapshot missing");
      (* a truncated image — a worker dying mid-write before the rename
         commit point — must be rejected, never half-restored *)
      let torn = Filename.concat dir "ckpt-000099.snap" in
      let whole = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin torn (fun oc ->
          Out_channel.output_string oc
            (String.sub whole 0 (String.length whole / 2)));
      (match Checkpoint.read_file torn with
      | Checkpoint.Corrupt _ -> ()
      | _ -> Alcotest.fail "truncated snapshot was accepted");
      Sys.remove torn;
      (* in-flight .tmp files are invisible to latest_file *)
      Out_channel.with_open_bin
        (Filename.concat dir "ckpt-999999.snap.tmp")
        (fun oc -> Out_channel.output_string oc "garbage");
      check tbool "latest_file skips .tmp" true
        (Checkpoint.latest_file ~dir = Some path);
      (* resume: a second run restores the snapshotted loops instead of
         recomputing them, and the value is bit-identical *)
      let r2 =
        Proc_cluster.run
          ~config:{ config with Proc_cluster.resume = true }
          ~inputs spine_prog
      in
      check value "resumed value identical" r.Proc_cluster.value
        r2.Proc_cluster.value;
      check tbool "loops restored from the snapshot" true
        (r2.Proc_cluster.stats.Proc_cluster.restored_loops > 0))

(* ---------------- runner ---------------- *)

let () =
  Alcotest.run "proc"
    [ ( "healthy",
        [ Alcotest.test_case "bit-identical, reaped, no fd leak" `Quick
            test_healthy_bit_identical;
        ] );
      ( "murder",
        [ Alcotest.test_case "kill mid-loop recovers bit-identical" `Quick
            test_kill_recovers_bit_identical;
          Alcotest.test_case "twelve apps under single kills" `Slow
            test_apps_single_kill;
        ] );
      ( "supervision",
        [ Alcotest.test_case "hung worker hits the deadline" `Quick
            test_hung_worker_deadline;
          Alcotest.test_case "wedged idle worker misses heartbeats" `Quick
            test_heartbeat_kill;
          Alcotest.test_case "kill between task send and first reply" `Quick
            test_kill_between_send_and_reply;
          Alcotest.test_case "children reaped after parent error" `Quick
            test_reaping_after_parent_error;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded murder replays exactly" `Quick
            test_replay_determinism;
          Alcotest.test_case "worker seed derivation rule" `Quick
            test_worker_seed_rule;
          Alcotest.test_case "proc fates are deterministic" `Quick
            test_proc_fate_deterministic;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "crash-safe files and resume" `Quick
            test_checkpoint_files;
        ] );
    ]

(* TCP executor tests (DESIGN.md §16).

   The contract under test: TCP-attached workers hit with real network
   faults — blackholed links, mid-frame severs, CRC-failing corruption,
   SIGKILLed processes — change the membership counters but NEVER the
   computed value; dropped links resume their session inside the grace
   window and are refused (then replanned) outside it; and every run
   terminates with every socket closed and every local child reaped.

   The protocol-level group speaks the wire protocol by hand — raw
   [Transport] frames over a real TCP connection to a live master
   running in this process — so handshake rejection, session resume,
   and grace-expiry refusal are tested against the actual reasons the
   master gives, not just their side effects. *)

open Dmll_ir
open Dmll_interp
open Dmll_runtime
open Exp
open Builder
module M = Dmll_machine.Machine
module NC = Net_cluster

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let xs_input = Exp.Input ("xs", Types.Arr Types.Float, Exp.Partitioned)

let xs_val n =
  Value.of_float_array (Array.init n (fun i -> float_of_int (i mod 17)))

(* Integer reduction: merge order cannot hide behind float rounding, so
   every comparison below is bit-exact. *)
let int_prog =
  isum ~size:(Exp.Len xs_input) (fun i -> f2i (Exp.Read (xs_input, i)) *! int_ 3)

(* A two-loop spine: a distributed collect feeding a distributed int
   reduce, with scalar glue at the end. *)
let spine_prog =
  let ys = Sym.fresh ~name:"ys" (Types.Arr Types.Float) in
  let s = Sym.fresh ~name:"s" Types.Int in
  Exp.Let
    ( ys,
      collect ~size:(len xs_input) (fun i -> read xs_input i *. float_ 2.0),
      Exp.Let
        ( s,
          isum ~size:(len (Exp.Var ys)) (fun i -> f2i (read (Exp.Var ys) i)),
          Exp.Var s +! int_ 1 ) )

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let pid_gone pid =
  match Unix.kill pid 0 with
  | () -> false
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
  | exception _ -> true

let no_children () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | _ -> false

let assert_clean (tag : string) (stats : NC.stats) =
  List.iter
    (fun pid ->
      check tbool (Printf.sprintf "%s: pid %d gone" tag pid) true (pid_gone pid))
    stats.NC.pids;
  check tbool (tag ^ ": no zombies or stray children") true (no_children ())

(* Short supervision horizons so faulted runs spend milliseconds — not
   the default multi-second deadlines — discovering each injected loss,
   and a respawn budget generous enough that chaos never exhausts it. *)
let net_config ?faults ?(workers = 3) ?(task_deadline_s = 0.5)
    ?(heartbeat_s = 0.04) ?(reconnect_grace_s = 0.12) ?(max_respawns = 64) () =
  { NC.default_config with
    NC.workers;
    faults;
    task_deadline_s;
    heartbeat_s;
    reconnect_grace_s;
    max_respawns;
  }

(* ================================================================== *)
(* Transport codec (the shared pipe + TCP frame format)                *)
(* ================================================================== *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_socketpair (f : Unix.file_descr -> Unix.file_descr -> unit) : unit =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      close_quiet a;
      close_quiet b)
    (fun () -> f a b)

let write_all fd (buf : bytes) : unit =
  let n = ref 0 in
  while !n < Bytes.length buf do
    n := !n + Unix.write fd buf !n (Bytes.length buf - !n)
  done

(* Read the raw on-wire form of one frame, so tests can damage it. *)
let raw_frame (v : 'a) : bytes =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      close_quiet a;
      close_quiet b)
    (fun () ->
      Transport.write_frame a v;
      Unix.close a;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read b chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Buffer.to_bytes buf)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      Transport.write_frame a "hello";
      Transport.write_frame a [ 1; 2; 3 ];
      Transport.write_frame a (Some (4.5, "x"));
      check Alcotest.string "string round-trips" "hello" (Transport.read_frame b);
      check (Alcotest.list tint) "list round-trips" [ 1; 2; 3 ]
        (Transport.read_frame b);
      check tbool "tuple round-trips" true
        (Transport.read_frame b = Some (4.5, "x")));
  (* the counted-connection wrapper sees the same bytes both ways *)
  with_socketpair (fun a b ->
      let ca = Transport.attach a and cb = Transport.attach b in
      Transport.send ca (42, "payload");
      check tbool "conn round-trips" true (Transport.recv cb = (42, "payload"));
      check tint "bytes counted symmetrically" (Transport.bytes_out ca)
        (Transport.bytes_in cb);
      check tint "one frame out" 1 (Transport.frames_out ca);
      check tint "one frame in" 1 (Transport.frames_in cb);
      check tbool "frame bigger than its header" true
        (Transport.bytes_out ca > Transport.header_bytes))

let test_torn_frame_is_peer_gone () =
  (* header promises 100 bytes, the peer dies after 40: a torn frame is
     a dead peer, not a parse error *)
  with_socketpair (fun a b ->
      let hdr = Bytes.create Transport.header_bytes in
      Bytes.set_int64_be hdr 0 100L;
      Bytes.set_int32_be hdr 8 0l;
      write_all a hdr;
      write_all a (Bytes.create 40);
      Unix.close a;
      match (Transport.read_frame b : string) with
      | _ -> Alcotest.fail "torn frame was accepted"
      | exception Transport.Peer_gone -> ())

let test_short_header_is_peer_gone () =
  with_socketpair (fun a b ->
      write_all a (Bytes.create 5);
      Unix.close a;
      match (Transport.read_frame b : string) with
      | _ -> Alcotest.fail "short header was accepted"
      | exception Transport.Peer_gone -> ())

let test_crc_rejects_flipped_bit () =
  let frame = raw_frame "the quick brown fox jumps over the lazy dog" in
  (* flip one payload bit, well past the header *)
  let i = Transport.header_bytes + (Bytes.length frame - Transport.header_bytes) / 2 in
  Bytes.set frame i (Char.chr (Char.code (Bytes.get frame i) lxor 0x10));
  with_socketpair (fun a b ->
      write_all a frame;
      Unix.close a;
      match (Transport.read_frame b : string) with
      | _ -> Alcotest.fail "corrupt payload was accepted"
      | exception Transport.Corrupt_frame d ->
          check tbool "structured T-FRAME diagnostic" true
            (let s = Dmll_analysis.Diag.to_string d in
             String.length s >= 7
             &&
             let rec find i =
               i + 7 <= String.length s
               && (String.sub s i 7 = "T-FRAME" || find (i + 1))
             in
             find 0))

let test_insane_length_rejected () =
  with_socketpair (fun a b ->
      let hdr = Bytes.create Transport.header_bytes in
      Bytes.set_int64_be hdr 0 (Int64.of_int (Transport.max_frame_bytes + 1));
      Bytes.set_int32_be hdr 8 0l;
      write_all a hdr;
      match (Transport.read_frame b : string) with
      | _ -> Alcotest.fail "oversized frame was accepted"
      | exception Transport.Corrupt_frame _ -> ())

let test_deadline_edge_inclusive () =
  (* data already buffered when the deadline has just arrived is still
     read — the heartbeat that lands exactly at the deadline counts *)
  with_socketpair (fun a b ->
      Transport.write_frame a "on-time";
      check Alcotest.string "frame at the deadline edge accepted" "on-time"
        (Transport.read_frame ~deadline:(Unix.gettimeofday ()) b));
  (* and an empty link past its deadline is a timeout, not a hang *)
  with_socketpair (fun _a b ->
      match
        (Transport.read_frame ~deadline:(Stdlib.( +. ) (Unix.gettimeofday ()) 0.02) b
          : string)
      with
      | _ -> Alcotest.fail "read returned without data"
      | exception Transport.Frame_timeout -> ())

(* ================================================================== *)
(* Healthy runs                                                        *)
(* ================================================================== *)

let test_healthy_bit_identical () =
  let inputs = [ ("xs", xs_val 1009) ] in
  let fds_before = open_fds () in
  let expected = Interp.run ~inputs int_prog in
  let r = NC.run ~config:(net_config ()) ~inputs int_prog in
  check value "net = interpreter" expected r.NC.value;
  let r2 = NC.run ~config:(net_config ()) ~inputs spine_prog in
  check value "spine net = interpreter" (Interp.run ~inputs spine_prog)
    r2.NC.value;
  assert_clean "healthy" r.NC.stats;
  assert_clean "healthy spine" r2.NC.stats;
  check tint "fds restored (listener, links)" fds_before (open_fds ());
  check tint "every slot joined" 3 r.NC.stats.NC.connects;
  (* idle links answered the loop-boundary keepalives *)
  check tbool "pings answered" true (r2.NC.stats.NC.pongs > 0);
  (* the per-link byte ledger saw real traffic in both directions *)
  let bytes name =
    Option.value ~default:0.0
      (List.assoc_opt name (Dmll_obs.Metrics.byte_counters r.NC.metrics))
  in
  check tbool "bytes flowed to workers" true (bytes "net_bytes_out" > 0.0);
  check tbool "bytes flowed back" true (bytes "net_bytes_in" > 0.0)

(* ================================================================== *)
(* The twelve apps under 5% network chaos                              *)
(* ================================================================== *)

(* crash + partition + sever + corrupt at 5%, delays on top: every
   fault class the network model has, delivered for real on live TCP
   links.  [heartbeat_ms] keys the injected partition duration — keep
   it short so a blackholed link costs milliseconds. *)
let chaos_spec ~seed =
  { M.default_faults with
    M.fault_seed = seed;
    crash_prob = 0.05;
    crash_transient_frac = 1.0;
    straggler_prob = 0.0;
    partition_prob = 0.05;
    sever_prob = 0.05;
    corrupt_prob = 0.05;
    link_delay_prob = 0.1;
    link_delay_ms = 0.3;
    heartbeat_ms = 20.0;
    max_retries = 2;
    backoff_us = 50.0;
  }

let apps : (string * Exp.exp * (string * Value.t) list) list =
  let open Dmll_apps in
  let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 () in
  let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data in
  let lr_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:5 ~classes:2 () in
  let q1_table = Dmll_data.Tpch.generate ~rows:500 () in
  let gene_reads = Dmll_data.Genes.generate ~reads:500 ~barcodes:20 () in
  let pr_graph =
    Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ())
  in
  let tri_graph =
    Dmll_graph.Csr.of_edges
      (Dmll_data.Rmat.symmetrize
         (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:4 ()))
  in
  let knn_train =
    Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 ()
  in
  let knn_test =
    Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 ()
  in
  let nb_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 () in
  let gibbs_graph = Dmll_data.Factor_graph.generate ~vars:50 ~factors:150 () in
  let gibbs_state = Dmll_data.Factor_graph.initial_state gibbs_graph in
  let gibbs_rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 gibbs_graph in
  [ ( "kmeans",
      Kmeans.program ~rows:60 ~cols:6 ~k:3 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "logreg",
      Logreg.program ~rows:50 ~cols:5 ~alpha:0.01 (),
      Logreg.inputs lr_data ~theta:(Array.make 5 0.1) );
    ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "tpch_q1",
      Tpch_q1.program (),
      Tpch_q1.aos_inputs q1_table @ Tpch_q1.soa_inputs q1_table );
    ( "gene",
      Gene.program (),
      Gene.aos_inputs gene_reads @ Gene.soa_inputs gene_reads );
    ( "pagerank_pull",
      Pagerank.program_pull ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ( "pagerank_push",
      Pagerank.program_push ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ("tricount", Tricount.program (), Tricount.inputs tri_graph);
    ( "knn",
      Knn.program ~train_rows:40 ~test_rows:12 ~cols:4 (),
      Knn.inputs ~train:knn_train ~test:knn_test );
    ( "naive_bayes",
      Naive_bayes.program ~rows:50 ~cols:4 (),
      Naive_bayes.inputs nb_data );
    ( "gibbs",
      Gibbs.program ~nvars:50 ~replicas:2 (),
      Gibbs.inputs gibbs_graph ~state:gibbs_state ~rand:gibbs_rand );
    ( "ridge",
      Ridge.program ~rows:50 ~cols:5 ~alpha:0.001 ~lambda:0.1 (),
      Ridge.inputs lr_data ~theta:(Array.make 5 0.2) );
  ]

let test_apps_under_network_chaos () =
  let fds_before = open_fds () in
  let link_faults = ref 0 and murders = ref 0 in
  List.iteri
    (fun i (name, program, inputs) ->
      let c = Dmll.compile_with Dmll.Config.default program in
      let reference = (Dmll.execute Dmll.Config.default c ~inputs).Dmll.value in
      let healthy = NC.run ~config:(net_config ()) ~inputs c.Dmll.final in
      (* net vs sequential: bit-identical for exact merges, float-merge
         identical (1e-6) where chunked float reduces reassociate *)
      check tbool
        (name ^ ": net matches sequential")
        true
        (Value.equal healthy.NC.value reference
        || Value.approx_equal ~eps:1e-6 reference healthy.NC.value);
      let fault = Fault.create (chaos_spec ~seed:(300 + i)) in
      let r = NC.run ~config:(net_config ~faults:fault ()) ~inputs c.Dmll.final in
      (* the robustness headline: partitions, severs, corrupt frames,
         and murders never change the value *)
      check value (name ^ ": chaos = healthy, bit-identical") healthy.NC.value
        r.NC.value;
      link_faults := !link_faults + Fault.link_fault_count fault;
      let s = r.NC.stats in
      murders := !murders + s.NC.killed + s.NC.link_cuts + s.NC.deadline_kills;
      assert_clean name s)
    apps;
  check tbool "link faults were delivered across the sweep" true
    (!link_faults > 0);
  check tbool "process murder happened across the sweep" true (!murders > 0);
  check tint "fds restored after the chaos sweep" fds_before (open_fds ())

(* ================================================================== *)
(* Worker dies between a task send and its first reply                 *)
(* ================================================================== *)

let test_kill_between_send_and_reply () =
  let inputs = [ ("xs", xs_val 601) ] in
  let healthy =
    (NC.run ~config:(net_config ()) ~inputs spine_prog).NC.value
  in
  let fds_before = open_fds () in
  let pids = Array.make 8 0 in
  let killed_once = ref false in
  let on_spawn ~slot ~pid = pids.(slot) <- pid in
  (* murder the worker in the race window: its task frame is written,
     its first reply (and first heartbeat) has not happened yet *)
  let on_task_sent ~slot ~chunk:_ =
    if (not !killed_once) && pids.(slot) <> 0 then begin
      killed_once := true;
      Unix.kill pids.(slot) Sys.sigkill
    end
  in
  let config =
    { (net_config ()) with
      NC.on_spawn = Some on_spawn;
      on_task_sent = Some on_task_sent;
    }
  in
  let r = NC.run ~config ~inputs spine_prog in
  check tbool "the kill landed in the race window" true !killed_once;
  check value "kill between send and reply: value unchanged" healthy r.NC.value;
  let s = r.NC.stats in
  (* the reply can beat the SIGKILL into the socket buffer; detection
     then comes from the dead link, the deadline, or the boundary pings
     — one of them must have noticed, and membership must have healed *)
  check tbool "loss was detected" true
    (s.NC.disconnects > 0 || s.NC.deadline_kills > 0
    || s.NC.heartbeat_kills > 0);
  assert_clean "send-race" s;
  check tint "fds restored" fds_before (open_fds ())

(* ================================================================== *)
(* Protocol level: hand-rolled workers over real TCP                   *)
(* ================================================================== *)

let dial (addr : string) : Unix.file_descr =
  let i = String.rindex addr ':' in
  let host = String.sub addr 0 i in
  let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
  let sa = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd sa;
  fd

let handshake fd ~(token : string) ~(reconnect : int option) : NC.welcome =
  Transport.write_frame fd
    { NC.version = NC.protocol_version; token; reconnect };
  Transport.read_frame ~deadline:(Stdlib.( +. ) (Unix.gettimeofday ()) 5.0) fd

(* Serve the master's frames, computing chunk values exactly the way a
   real worker does.  [drop_before_reply n] closes the link on receipt
   of the n-th task, before answering — the master is left with an
   in-flight chunk it must retain for resume or replan. *)
let rec fake_serve fd ~(inputs : (string * Value.t) list)
    ~(drop_before_reply : int option) ~(tasks_seen : int ref) : [ `Done | `Dropped ] =
  match (Transport.read_frame fd : NC.to_worker) with
  | exception (Transport.Peer_gone | End_of_file) ->
      close_quiet fd;
      `Done
  | NC.Shutdown ->
      close_quiet fd;
      `Done
  | NC.Ping k ->
      Transport.write_frame fd (NC.Pong k);
      fake_serve fd ~inputs ~drop_before_reply ~tasks_seen
  | NC.Task t ->
      incr tasks_seen;
      if drop_before_reply = Some !tasks_seen then begin
        close_quiet fd;
        `Dropped
      end
      else begin
        let v =
          Dmll_backend.Closure.run ~inputs:(t.NC.bindings @ inputs) t.NC.prog
        in
        Transport.write_frame fd
          (NC.Done
             { task_id = t.NC.task_id; chunk = t.NC.chunk; value = v;
               retries = 0 });
        fake_serve fd ~inputs ~drop_before_reply ~tasks_seen
      end

(* Run the master in this thread against a protocol-speaking worker
   thread; return (master result, worker's observations). *)
let with_fake_worker ~(config : NC.config) ~(inputs : (string * Value.t) list)
    (worker : addr:string -> 'a) (program : Exp.exp) : NC.result * 'a =
  let addr_box = ref None in
  let obs = ref None in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let on_listen ~addr =
    Mutex.lock mu;
    addr_box := Some addr;
    Condition.signal cond;
    Mutex.unlock mu
  in
  let th =
    Thread.create
      (fun () ->
        Mutex.lock mu;
        while !addr_box = None do
          Condition.wait cond mu
        done;
        let addr = Option.get !addr_box in
        Mutex.unlock mu;
        obs := Some (worker ~addr))
      ()
  in
  let r =
    Fun.protect
      ~finally:(fun () -> Thread.join th)
      (fun () ->
        NC.run
          ~config:{ config with NC.spawn_local = false; on_listen = Some on_listen }
          ~inputs program)
  in
  (r, Option.get !obs)

let test_token = "net-test-token"

let test_reconnect_and_resume () =
  let inputs = [ ("xs", xs_val 509) ] in
  let expected = Interp.run ~inputs spine_prog in
  let fds_before = open_fds () in
  let config =
    { (net_config ~workers:2 ~reconnect_grace_s:1.5 ()) with
      NC.token = Some test_token;
      join_deadline_s = 5.0;
    }
  in
  (* worker A joins, takes its first task, drops the link before
     replying, then redials with its session id inside the grace window
     and serves the replayed chunk (and everything after) to the end;
     worker B serves normally throughout, so the loop genuinely runs
     distributed while A's chunk sits retained *)
  let worker ~addr =
    let server =
      Thread.create
        (fun () ->
          let fd = dial addr in
          match handshake fd ~token:test_token ~reconnect:None with
          | NC.Rejected _ -> close_quiet fd
          | NC.Accepted { inputs = winputs; _ } ->
              ignore
                (fake_serve fd ~inputs:winputs ~drop_before_reply:None
                   ~tasks_seen:(ref 0)))
        ()
    in
    let obs =
      let fd = dial addr in
      match handshake fd ~token:test_token ~reconnect:None with
      | NC.Rejected { reason } -> `Rejected reason
      | NC.Accepted { wid; inputs = winputs; _ } -> (
          let tasks_seen = ref 0 in
          match
            fake_serve fd ~inputs:winputs ~drop_before_reply:(Some 1)
              ~tasks_seen
          with
          | `Done -> `Never_dropped
          | `Dropped -> (
              let fd2 = dial addr in
              match handshake fd2 ~token:test_token ~reconnect:(Some wid) with
              | NC.Rejected { reason } ->
                  close_quiet fd2;
                  `Rejected reason
              | NC.Accepted { wid = wid2; inputs = winputs; _ } ->
                  ignore
                    (fake_serve fd2 ~inputs:winputs ~drop_before_reply:None
                       ~tasks_seen);
                  `Resumed (wid, wid2, !tasks_seen)))
    in
    Thread.join server;
    obs
  in
  let r, obs = with_fake_worker ~config ~inputs worker spine_prog in
  (match obs with
  | `Resumed (wid, wid2, seen) ->
      check tint "resume keeps the session id" wid wid2;
      (* the dropped in-flight chunk was replayed after resume *)
      check tbool "saw the replayed task" true (seen >= 2)
  | `Rejected reason -> Alcotest.failf "worker was rejected: %s" reason
  | `Never_dropped -> Alcotest.fail "drop point never reached");
  check value "resumed run = interpreter" expected r.NC.value;
  let s = r.NC.stats in
  check tbool "link loss was recorded" true (s.NC.disconnects >= 1);
  check tint "exactly one resume" 1 s.NC.reconnects;
  check tbool "resume avoided a replan" true (s.NC.grace_expired = 0);
  assert_clean "reconnect" s;
  check tint "fds restored" fds_before (open_fds ())

(* A joined worker that answers every ping but sits on its tasks
   forever: it keeps the master's run (and listener) alive until the
   task deadline kills the link. *)
let rec hold_tasks fd : unit =
  match (Transport.read_frame fd : NC.to_worker) with
  | exception _ -> close_quiet fd
  | NC.Shutdown -> close_quiet fd
  | NC.Ping k ->
      (try Transport.write_frame fd (NC.Pong k) with _ -> ());
      hold_tasks fd
  | NC.Task _ -> hold_tasks fd

let test_grace_expiry_refused_and_replanned () =
  let inputs = [ ("xs", xs_val 421) ] in
  let expected = Interp.run ~inputs spine_prog in
  let fds_before = open_fds () in
  let config =
    { (net_config ~workers:2 ~reconnect_grace_s:0.08 ~task_deadline_s:1.2 ())
      with
      NC.token = Some test_token;
      join_deadline_s = 5.0;
    }
  in
  (* worker A drops mid-task, oversleeps the grace window, then redials
     with the stale session id: the master must refuse the resume — the
     chunks were already replanned — and still finish without it.
     Worker B holds its task (answering pings) so the master is
     provably still running, and listening, when the stale redial
     lands; B dies by task deadline and its chunks fall to the master. *)
  let worker ~addr =
    let holder =
      Thread.create
        (fun () ->
          let fd = dial addr in
          match handshake fd ~token:test_token ~reconnect:None with
          | NC.Rejected _ -> close_quiet fd
          | NC.Accepted _ -> hold_tasks fd)
        ()
    in
    let obs =
      let fd = dial addr in
      match handshake fd ~token:test_token ~reconnect:None with
      | NC.Rejected { reason } -> `Rejected reason
      | NC.Accepted { wid; inputs = winputs; _ } -> (
          let tasks_seen = ref 0 in
          match
            fake_serve fd ~inputs:winputs ~drop_before_reply:(Some 1)
              ~tasks_seen
          with
          | `Done -> `Never_dropped
          | `Dropped -> (
              Thread.delay 0.4;
              let fd2 = dial addr in
              match handshake fd2 ~token:test_token ~reconnect:(Some wid) with
              | NC.Rejected { reason } ->
                  close_quiet fd2;
                  `Refused reason
              | NC.Accepted _ ->
                  close_quiet fd2;
                  `Wrongly_resumed))
    in
    Thread.join holder;
    obs
  in
  let r, obs = with_fake_worker ~config ~inputs worker spine_prog in
  (match obs with
  | `Refused reason ->
      check tbool
        ("refusal names the session, not the token: " ^ reason)
        true
        (reason = "grace window expired" || reason = "unknown session")
  | `Wrongly_resumed -> Alcotest.fail "stale session was resumed after grace"
  | `Rejected reason -> Alcotest.failf "initial join rejected: %s" reason
  | `Never_dropped -> Alcotest.fail "drop point never reached");
  check value "master finished without the lost worker" expected r.NC.value;
  let s = r.NC.stats in
  check tbool "grace expiry was recorded" true (s.NC.grace_expired >= 1);
  check tbool "stale redial was rejected" true (s.NC.rejections >= 1);
  check tbool "holding worker hit its task deadline" true
    (s.NC.deadline_kills >= 1);
  check tbool "lost chunks were replanned" true
    (s.NC.replans > 0 || s.NC.master_chunks > 0);
  assert_clean "grace expiry" s;
  check tint "fds restored" fds_before (open_fds ())

let test_handshake_rejections () =
  let inputs = [ ("xs", xs_val 257) ] in
  let expected = Interp.run ~inputs int_prog in
  let config =
    { (net_config ~workers:1 ()) with
      NC.token = Some test_token;
      join_deadline_s = 5.0;
    }
  in
  let worker ~addr =
    (* wrong token *)
    let fd1 = dial addr in
    let r1 = handshake fd1 ~token:"wrong" ~reconnect:None in
    close_quiet fd1;
    (* wrong protocol version *)
    let fd2 = dial addr in
    Transport.write_frame fd2
      { NC.version = NC.protocol_version + 1; token = test_token;
        reconnect = None };
    let r2 =
      (Transport.read_frame ~deadline:(Stdlib.( +. ) (Unix.gettimeofday ()) 5.0) fd2
        : NC.welcome)
    in
    close_quiet fd2;
    (* resume of a session that never existed *)
    let fd3 = dial addr in
    let r3 = handshake fd3 ~token:test_token ~reconnect:(Some 999) in
    close_quiet fd3;
    (* then a well-formed join that carries the run *)
    let fd4 = dial addr in
    match handshake fd4 ~token:test_token ~reconnect:None with
    | NC.Rejected { reason } -> `Join_failed reason
    | NC.Accepted { inputs = winputs; _ } ->
        ignore
          (fake_serve fd4 ~inputs:winputs ~drop_before_reply:None
             ~tasks_seen:(ref 0));
        `Ok (r1, r2, r3)
  in
  let r, obs = with_fake_worker ~config ~inputs worker int_prog in
  (match obs with
  | `Join_failed reason -> Alcotest.failf "clean join rejected: %s" reason
  | `Ok (r1, r2, r3) ->
      let reason = function
        | NC.Rejected { reason } -> reason
        | NC.Accepted _ -> "(accepted)"
      in
      check Alcotest.string "bad token refused" "bad session token" (reason r1);
      check tbool "version mismatch refused" true
        (match r2 with NC.Rejected _ -> true | NC.Accepted _ -> false);
      check Alcotest.string "unknown session refused" "unknown session"
        (reason r3));
  check value "run completed on the surviving join" expected r.NC.value;
  check tint "three hellos were rejected" 3 r.NC.stats.NC.rejections

(* ================================================================== *)
(* Deterministic replay                                                *)
(* ================================================================== *)

let test_replay_determinism () =
  let inputs = [ ("xs", xs_val 769) ] in
  let go () =
    let fault = Fault.create (chaos_spec ~seed:2026) in
    (NC.run ~config:(net_config ~faults:fault ()) ~inputs spine_prog).NC.value
  in
  check value "seeded network chaos replays to the same value" (go ()) (go ())

(* ---------------- runner ---------------- *)

let () =
  Alcotest.run "net"
    [ ( "transport",
        [ Alcotest.test_case "frames round-trip, bytes counted" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "torn frame is a dead peer" `Quick
            test_torn_frame_is_peer_gone;
          Alcotest.test_case "short header is a dead peer" `Quick
            test_short_header_is_peer_gone;
          Alcotest.test_case "CRC rejects a flipped bit" `Quick
            test_crc_rejects_flipped_bit;
          Alcotest.test_case "insane length rejected" `Quick
            test_insane_length_rejected;
          Alcotest.test_case "deadline edge is inclusive" `Quick
            test_deadline_edge_inclusive;
        ] );
      ( "healthy",
        [ Alcotest.test_case "bit-identical, fds restored, bytes ledgered"
            `Quick test_healthy_bit_identical;
        ] );
      ( "chaos",
        [ Alcotest.test_case "twelve apps under 5% network chaos" `Slow
            test_apps_under_network_chaos;
          Alcotest.test_case "kill between task send and first reply" `Quick
            test_kill_between_send_and_reply;
        ] );
      ( "protocol",
        [ Alcotest.test_case "drop mid-task, reconnect, resume" `Quick
            test_reconnect_and_resume;
          Alcotest.test_case "grace expiry refused and replanned" `Quick
            test_grace_expiry_refused_and_replanned;
          Alcotest.test_case "handshake rejections" `Quick
            test_handshake_rejections;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded chaos replays exactly" `Quick
            test_replay_determinism;
        ] );
    ]

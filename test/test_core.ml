(* Tests of the Dmll facade: compilation reports, target dispatch, codegen
   entry points, and cross-target value agreement. *)

module V = Dmll_interp.Value
module R = Dmll_runtime
module D = Dmll_dsl.Dsl

let check = Alcotest.check
let tbool = Alcotest.bool

(* The Config-based driver API, specialized for tests: compile under a
   target, run under default knobs. *)
let compile_t target p =
  Dmll.compile_with Dmll.Config.(default |> with_target target) p

let compile_seq p = Dmll.compile_with Dmll.Config.default p

let run_v c ~inputs = (Dmll.execute Dmll.Config.default c ~inputs).Dmll.value

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* a small program exercising filter + groupBy + per-group aggregation *)
let program () =
  D.reveal
    D.(
      let xs = input_farr ~layout:Dmll_ir.Exp.Partitioned "xs" in
      let$ big = filter xs (fun v -> v > float 1.0) in
      let$ g =
        group_reduce (length big)
          ~key:(fun i -> to_int (get big i) mod int 3)
          ~value:(fun i -> get big i)
          ~init:(float 0.0)
          ~combine:(fun a b -> a +. b)
      in
      map_buckets g (fun v -> v *. float 2.0))

let inputs =
  [ ("xs", V.of_float_array (Array.init 200 (fun i -> float_of_int (i mod 13)))) ]

let test_compile_report () =
  let c = compile_seq (program ()) in
  let opts = Dmll.optimizations c in
  check tbool "fusion fired" true (List.mem "pipeline-fusion" opts);
  (* the partitioning analysis sees xs as partitioned *)
  check tbool "xs partitioned" true
    (Dmll_analysis.Partition.layout_of (Dmll_analysis.Stencil.Tinput "xs")
       c.Dmll.partition.Dmll_analysis.Partition.layouts
    = Dmll_ir.Exp.Partitioned);
  check tbool "no warnings" true (Dmll.warnings c = [])

let test_targets_agree () =
  let reference = run_v (compile_seq (program ())) ~inputs in
  let targets =
    [ Dmll.Sequential;
      Dmll.Multicore 2;
      Dmll.Numa
        { R.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
          threads = 48;
          mode = R.Sim_numa.Numa_aware;
        };
      Dmll.Gpu { R.Sim_gpu.transpose = true; row_to_column = true };
      Dmll.Cluster R.Sim_cluster.default_config;
    ]
  in
  List.iter
    (fun t ->
      let c = compile_t t (program ()) in
      let v = run_v c ~inputs in
      check tbool "target value agrees" true (V.approx_equal ~eps:1e-9 reference v))
    targets

let test_timed_run () =
  let c =
    compile_t
      (Dmll.Numa
           { R.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
             threads = 12;
             mode = R.Sim_numa.Pin_only;
         })
      (program ())
  in
  let t = (Dmll.execute Dmll.Config.default c ~inputs).Dmll.seconds in
  check tbool "simulated time positive" true (t > 0.0)

let test_codegen () =
  let c = compile_seq (program ()) in
  check tbool "C++ emitted" true (contains (Dmll.codegen `Cpp c) "int64_t");
  check tbool "CUDA emitted" true (contains (Dmll.codegen `Cuda c) "__global__");
  check tbool "Scala emitted" true (contains (Dmll.codegen `Scala c) "object")

let test_warning_surface () =
  (* a gather program draws a Remote_access warning through the facade *)
  let p =
    D.reveal
      D.(
        let xs = input_farr ~layout:Dmll_ir.Exp.Partitioned "xs" in
        let perm = input_iarr "perm" in
        map perm (fun i -> get xs i))
  in
  let c = compile_seq p in
  check tbool "remote access surfaced" true
    (List.exists (fun w -> contains w "runtime data movement") (Dmll.warnings c))

let test_iterate () =
  (* k-means to (near) convergence through the facade: centroids feed back
     as the "clusters" input; the result matches iterating the
     hand-optimized step the same number of times *)
  let rows = 80 and cols = 4 and k = 3 and iters = 5 in
  let d = Dmll_data.Gaussian.generate ~rows ~cols ~classes:k () in
  let c0 = Dmll_data.Gaussian.random_centroids ~k d in
  let compiled = compile_seq (Dmll_apps.Kmeans.program ~rows ~cols ~k ()) in
  let final =
    Dmll.iterate compiled
      ~inputs:(Dmll_apps.Kmeans.inputs d ~centroids:c0)
      ~feedback:(fun v ->
        [ ("clusters", V.of_float_array (Dmll_apps.Kmeans.result_to_flat v ~cols)) ])
      ~iters
  in
  let expected = ref c0 in
  for _ = 1 to iters do
    expected :=
      Dmll_apps.Kmeans.handopt ~data:d.Dmll_data.Gaussian.data ~rows ~cols ~k
        ~centroids:!expected
  done;
  let got = Dmll_apps.Kmeans.result_to_flat final ~cols in
  Array.iteri
    (fun i x ->
      check tbool "converged centroids match" true
        (Float.abs (x -. !expected.(i)) < 1e-6 *. (1.0 +. Float.abs x)))
    got

(* the whole driver — generic pipeline, partitioning-triggered rewrites,
   target lowering, execution — preserves semantics on random programs *)
let prop_driver_preserves =
  QCheck.Test.make ~count:100 ~name:"Dmll.compile preserves semantics"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      match Dmll_interp.Interp.run e with
      | exception Dmll_interp.Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          List.for_all
            (fun target ->
              let c = compile_t target e in
              V.approx_equal ~eps:1e-6 expected (run_v c ~inputs:[]))
            [ Dmll.Sequential;
              Dmll.Gpu { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true };
            ])

let () =
  Alcotest.run "core"
    [ ( "facade",
        [ Alcotest.test_case "compile report" `Quick test_compile_report;
          Alcotest.test_case "targets agree" `Quick test_targets_agree;
          Alcotest.test_case "timed run" `Quick test_timed_run;
          Alcotest.test_case "codegen" `Quick test_codegen;
          Alcotest.test_case "warnings" `Quick test_warning_surface;
          Alcotest.test_case "iterate" `Quick test_iterate;
          QCheck_alcotest.to_alcotest prop_driver_preserves;
        ] );
    ]

(* Checkpointed elastic runtime tests (DESIGN.md §11).

   The contract everywhere: checkpoints, membership churn (joins and
   graceful leaves), memory backpressure, and the restore-vs-replay
   recovery policy change the simulated clock and the event counters but
   NEVER the computed values.  Every run here is checked bit-identical to
   the reference interpreter, and the breakdown must show the new elastic
   phases being paid for exactly when their feature is armed. *)

open Dmll_ir
open Dmll_interp
open Dmll_runtime
open Exp
open Builder
module M = Dmll_machine.Machine

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let value : Value.t Alcotest.testable =
  Alcotest.testable (fun fmt v -> Fmt.string fmt (Value.to_string v)) Value.equal

let xs_input = Exp.Input ("xs", Types.Arr Types.Float, Exp.Partitioned)
let xs_val n = Value.of_float_array (Array.init n (fun i -> float_of_int (i mod 17)))

(* [depth] chained partitioned collects ending in a reduction: a spine
   long enough that churn, cadenced checkpoints, and late crashes all get
   several loops to land on. *)
let chain_program depth =
  let rec go d m =
    if d = 0 then fsum ~size:(len m) (fun i -> read m i)
    else
      bind ~ty:(Types.Arr Types.Float)
        (collect ~size:(len m) (fun i -> read m i *. float_ 1.5))
        (go (d - 1))
  in
  go depth xs_input

let run_config ?faults ?(nodes = 4) ?mem_budget_gb () =
  { Sim_cluster.default_config with
    cluster = M.with_nodes nodes M.ec2_cluster;
    faults;
    mem_budget_gb;
  }

(* ---------------- directory-aligned elastic rebalance ---------------- *)

let test_schedule_rebalance () =
  let n = 103 in
  let live = [ 1; 3; 4; 9 ] in
  let units = Schedule.rebalance ~live n in
  check tbool "covers the index space" true (Schedule.covers units n);
  List.iter
    (fun (u : Schedule.unit_of_work) ->
      check tbool "only live nodes receive work" true
        (List.mem u.Schedule.node live))
    units;
  (* directory alignment: every unit edge sits on a boundary (or the
     ends of the index space), so no partition chunk is torn in two *)
  let boundaries = [ 40; 80 ] in
  let units = Schedule.rebalance ~boundaries ~live:[ 0; 2 ] n in
  check tbool "boundary-aligned plan covers" true (Schedule.covers units n);
  let edges = 0 :: n :: boundaries in
  List.iter
    (fun (u : Schedule.unit_of_work) ->
      check tbool "unit edges are directory-aligned" true
        (List.mem u.Schedule.range.Chunk.lo edges
        && List.mem u.Schedule.range.Chunk.hi edges))
    units

(* ---------------- membership churn ------------------------------------ *)

let test_membership_churn () =
  let inputs = [ ("xs", xs_val 4096) ] in
  let program = chain_program 6 in
  let expected = Interp.run ~inputs program in
  let spec =
    { M.default_faults with
      M.fault_seed = 11;
      join_prob = 0.9;
      leave_prob = 0.6;
      spare_nodes = 3;
    }
  in
  let inj = Fault.create spec in
  let r =
    Sim_cluster.run ~config:(run_config ~faults:inj ~nodes:4 ()) ~inputs program
  in
  check value "churny value bit-identical" expected r.Sim_common.value;
  check tbool "spares joined" true (Fault.join_count inj > 0);
  check tbool "nodes left gracefully" true (Fault.leave_count inj > 0);
  check tbool "churn phase was charged" true
    (Sim_common.phase_total r "churn" > 0.0);
  (* healthy baseline charges no churn at all *)
  let healthy = Sim_cluster.run ~config:(run_config ~nodes:4 ()) ~inputs program in
  check value "healthy value" expected healthy.Sim_common.value;
  check (Alcotest.float 0.0) "no churn without membership events" 0.0
    (Sim_common.phase_total healthy "churn")

(* ---------------- memory backpressure --------------------------------- *)

let test_memory_pressure () =
  let inputs = [ ("xs", xs_val 8192) ] in
  let program = chain_program 3 in
  let expected = Interp.run ~inputs program in
  let roomy = Sim_cluster.run ~config:(run_config ~nodes:4 ()) ~inputs program in
  check value "roomy value" expected roomy.Sim_common.value;
  check (Alcotest.float 0.0) "no spill within budget" 0.0
    (Sim_common.phase_total roomy "spill");
  (* a ~2KB budget: every partition share is over budget *)
  let tight =
    Sim_cluster.run
      ~config:(run_config ~nodes:4 ~mem_budget_gb:2e-6 ())
      ~inputs program
  in
  check value "over-budget value bit-identical" expected tight.Sim_common.value;
  check tbool "spill phase was charged" true
    (Sim_common.phase_total tight "spill" > 0.0);
  check tbool "backpressure only slows the clock" true
    (tight.Sim_common.seconds > roomy.Sim_common.seconds)

(* ---------------- checkpoint integrity -------------------------------- *)

let test_checkpoint_verify () =
  let store = Checkpoint.create ~cadence:2 in
  check tbool "cadence 2: loop 1 not due" false (Checkpoint.due store ~loop:1);
  check tbool "cadence 2: loop 4 due" true (Checkpoint.due store ~loop:4);
  let v = xs_val 1000 in
  ignore
    (Checkpoint.record store ~at_loop:4 ~chunks:4
       ~bindings:[ ("m", v) ]
       ~driver:[ ("loop_no", Value.Vint 4) ]);
  check tint "one snapshot taken" 1 (Checkpoint.taken store);
  (match Checkpoint.restore store with
  | Checkpoint.Available s ->
      check tint "snapshot is at loop 4" 4 s.Checkpoint.at_loop;
      (* snapshots are deep copies: mutating the live value later must
         not corrupt the snapshot *)
      (match v with
      | Value.Varr (Value.Fa a) -> a.(0) <- 12345.0
      | _ -> Alcotest.fail "expected an unboxed float array");
      (match Checkpoint.restore store with
      | Checkpoint.Available _ -> ()
      | _ -> Alcotest.fail "snapshot must be isolated from live mutation")
  | _ -> Alcotest.fail "expected a verifiable snapshot");
  (* bit-rot in the stored copy itself is caught by the chunk checksums *)
  (match Checkpoint.latest store with
  | Some s -> (
      match List.assoc "m" s.Checkpoint.bindings with
      | { Checkpoint.value = Value.Varr (Value.Fa a) } -> a.(17) <- 1e9
      | _ -> Alcotest.fail "expected the stored float array")
  | None -> Alcotest.fail "snapshot vanished");
  match Checkpoint.restore store with
  | Checkpoint.Corrupt _ -> ()
  | Checkpoint.Available _ -> Alcotest.fail "corruption must not verify"
  | Checkpoint.None_taken -> Alcotest.fail "snapshot vanished"

(* ---------------- domain executor: crash, restore, resume ------------- *)

let test_domains_checkpoint_resume () =
  let inputs = [ ("xs", xs_val 5000) ] in
  let program = chain_program 4 in
  let expected = Exec_domains.run ~domains:4 ~inputs program in
  (* crash after 3 loops with a cadence-1 store: recovery restores the
     loop-3 snapshot and only recomputes the tail *)
  let store = Checkpoint.create ~cadence:1 in
  let inj = Fault.create M.default_faults in
  let got =
    Exec_domains.run_with_recovery ~domains:4 ~faults:inj ~store ~crash_after:3
      ~inputs program
  in
  check value "restored run bit-identical" expected got;
  check tint "restore was recorded" 1 (Fault.restore_count inj);
  check tint "no replay" 0 (Fault.replay_count inj);
  check tbool "snapshots were taken" true (Checkpoint.taken store >= 3)

let test_domains_replay_fallbacks () =
  let inputs = [ ("xs", xs_val 5000) ] in
  let program = chain_program 4 in
  let expected = Exec_domains.run ~domains:4 ~inputs program in
  (* no store cadence: nothing to restore, whole-spine lineage replay *)
  let store = Checkpoint.create ~cadence:0 in
  let inj = Fault.create M.default_faults in
  let got =
    Exec_domains.run_with_recovery ~domains:4 ~faults:inj ~store ~crash_after:2
      ~inputs program
  in
  check value "replayed run bit-identical" expected got;
  check tint "replay was recorded" 1 (Fault.replay_count inj);
  check tint "no restore" 0 (Fault.restore_count inj);
  (* corrupt store: checksum rejects the snapshot, replay wins anyway *)
  let store = Checkpoint.create ~cadence:1 in
  let inj = Fault.create M.default_faults in
  let corrupt_after_phase1 () =
    match Checkpoint.latest store with
    | Some s -> (
        match s.Checkpoint.bindings with
        | (_, { Checkpoint.value = Value.Varr (Value.Fa a) }) :: _ ->
            a.(0) <- 12345.0
        | _ -> ())
    | None -> ()
  in
  (* populate the store with a healthy run, corrupt its snapshot, then
     crash immediately (crash_after:0) so the doomed attempt cannot
     overwrite the corrupted snapshot with a fresh one before recovery *)
  ignore (Exec_domains.run ~domains:4 ~checkpoint:store ~inputs program);
  corrupt_after_phase1 ();
  let got =
    Exec_domains.run_with_recovery ~domains:4 ~faults:inj ~store ~crash_after:0
      ~inputs program
  in
  check value "corrupt-store run bit-identical" expected got;
  check tbool "fell back to lineage replay" true (Fault.replay_count inj >= 1);
  check tint "corrupt snapshot never restored" 0 (Fault.restore_count inj)

(* ---------------- restore-vs-replay on the simulated cluster ---------- *)

(* The acceptance scenario: a compute-heavy kmeans iteration crashes on
   its late loop, after the cadence-1 store snapshotted the assignment
   vector.  Replay would re-pay the lost share of the whole distance
   computation; restoring ships the (small) snapshot instead.  The
   cost-modeled policy must pick Restore, and the restore must be charged
   to the simulated clock.  Everything is pinned: seed 0, permanent
   crashes, 8 nodes. *)
let test_kmeans_late_crash_restores () =
  let rows = 8000 and cols = 32 and k = 32 in
  let data = Dmll_data.Gaussian.generate ~rows ~cols ~classes:4 () in
  let centroids = Dmll_data.Gaussian.random_centroids ~k data in
  let program = Dmll_apps.Kmeans.program ~rows ~cols ~k () in
  let inputs = Dmll_apps.Kmeans.inputs data ~centroids in
  let expected = Interp.run ~inputs program in
  let spec =
    { M.default_faults with
      M.fault_seed = 0;
      crash_prob = 0.35;
      crash_transient_frac = 0.0;
    }
  in
  let inj = Fault.create spec in
  let store = Checkpoint.create ~cadence:1 in
  let r =
    Sim_cluster.run
      ~config:(run_config ~faults:inj ~nodes:8 ())
      ~checkpoint:store ~inputs program
  in
  check value "crashed kmeans value bit-identical" expected r.Sim_common.value;
  (match Checkpoint.decisions store with
  | [ d ] ->
      check tint "decided on the late loop" 2 d.Checkpoint.decided_at_loop;
      check Alcotest.string "policy picked restore" "restore"
        (Checkpoint.choice_to_string d.Checkpoint.chosen);
      check tbool "restore was priced below replay" true
        (d.Checkpoint.restore_cost <= d.Checkpoint.replay_cost)
  | ds -> Alcotest.failf "expected exactly one decision, got %d" (List.length ds));
  check tint "restore event recorded" 1 (Fault.restore_count inj);
  check tbool "checkpoint phase on the simulated clock" true
    (Sim_common.phase_total r "checkpoint" > 0.0);
  check tbool "restore phase on the simulated clock" true
    (Sim_common.phase_total r "restore" > 0.0);
  check tbool "snapshot write bytes accounted" true
    (Checkpoint.written_bytes store > 0.0)

(* ---------------- recovery equivalence (property) --------------------- *)

(* For random partitioned programs, at 2 and 5 nodes: a fault-free run, a
   crashy run recovering via cadence-1 checkpoints, and a crashy run
   recovering via pure lineage replay must all produce bit-identical
   values.  Recovery strategy is a scheduling decision, never a semantic
   one. *)
let prop_recovery_equivalence =
  QCheck.Test.make ~count:60 ~name:"no-fault = crash+restore = crash+replay"
    Dmll_testgen.Gen_ir.arbitrary_partitioned_program (fun program ->
      let inputs = [ ("xs", xs_val 384) ] in
      match Interp.run ~inputs program with
      | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
      | expected ->
          List.for_all
            (fun nodes ->
              let crashy () =
                Fault.create
                  { M.default_faults with
                    M.fault_seed = 7 + nodes;
                    crash_prob = 0.5;
                    crash_transient_frac = 0.2;
                    max_retries = 2;
                    backoff_us = 1.0;
                  }
              in
              let healthy =
                Sim_cluster.run ~config:(run_config ~nodes ()) ~inputs program
              in
              let restored =
                Sim_cluster.run
                  ~config:(run_config ~faults:(crashy ()) ~nodes ())
                  ~checkpoint:(Checkpoint.create ~cadence:1)
                  ~inputs program
              in
              let replayed =
                Sim_cluster.run
                  ~config:(run_config ~faults:(crashy ()) ~nodes ())
                  ~inputs program
              in
              Value.equal expected healthy.Sim_common.value
              && Value.equal expected restored.Sim_common.value
              && Value.equal expected replayed.Sim_common.value)
            [ 2; 5 ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "elastic"
    [ ( "membership",
        [ Alcotest.test_case "elastic rebalance" `Quick test_schedule_rebalance;
          Alcotest.test_case "churn under join/leave" `Quick
            test_membership_churn;
        ] );
      ( "memory",
        [ Alcotest.test_case "spill & backpressure" `Quick test_memory_pressure ]
      );
      ( "checkpoint",
        [ Alcotest.test_case "checksums & corruption" `Quick
            test_checkpoint_verify;
          Alcotest.test_case "domains crash/resume" `Quick
            test_domains_checkpoint_resume;
          Alcotest.test_case "domains replay fallbacks" `Quick
            test_domains_replay_fallbacks;
        ] );
      ( "policy",
        [ Alcotest.test_case "kmeans late crash restores" `Quick
            test_kmeans_late_crash_restores;
        ] );
      ("equivalence", [ qt prop_recovery_equivalence ]);
    ]

(* Tests of the backend seam (DESIGN.md §17): the registry round-trip
   (every target resolves through the same string-keyed store, duplicate
   ids fail loudly, re-registration is idempotent), the --explain
   backends JSON golden schema, the content-addressed kernel cache
   (alpha-invariant keys, memory/disk tiers, atomic commit, corrupt and
   torn entries rejected and recompiled), cache hit/miss determinism on
   the twelve apps (the second execution of an identical plan does zero
   codegen and zero compilation, and its value is bit-identical), and a
   QCheck property that the Dynlink JIT and the child-process fallback
   compute the same value on random programs. *)

open Dmll_ir
module Backend = Dmll_backend
module B = Backend.Backend
module Registry = Backend.Registry
module Cache = Backend.Kernel_cache
module Native = Backend.Native
module V = Dmll_interp.Value
module Interp = Dmll_interp.Interp
module Metrics = Dmll_obs.Metrics

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let tids = Alcotest.(list string)

let () = Dmll.Backends.ensure_registered ()

(* Registry.ids sorts, so this is the golden order. *)
let expected_ids =
  [ "closure"; "multicore"; "native"; "net-cluster"; "proc-cluster";
    "sim-cluster"; "sim-gpu"; "sim-numa" ]

(* A fresh private cache root per test: hit/miss accounting must never
   leak between tests (or from a previous run of the suite).  All roots
   are removed when the suite exits — the hygiene this PR is about. *)
let roots : string list ref = ref []
let () = at_exit (fun () -> List.iter Cache.rm_rf !roots)

let fresh_root () =
  let f = Filename.temp_file "dmll-seam-cache" "" in
  Sys.remove f;
  roots := f :: !roots;
  f

let write_file path payload =
  let oc = open_out_bin path in
  output_string oc payload;
  close_out oc

(* ---------------------- registry round-trip --------------------------- *)

let no_caps =
  { B.wall_clock = false;
    parallel = false;
    distributed = false;
    fault_injection = false;
    checkpointing = false;
    mem_budget = false;
    emits_source = false;
    cacheable_kernels = false;
  }

let fake_backend fid : (module B.S) =
  (module struct
    let id = fid
    let describe = "test stub"
    let capabilities = no_caps
    let plan _ = B.default_plan
    let emit _ _ = None
    let execute _ _ _ = failwith "stub backend executed"
  end)

let test_registry_roundtrip () =
  check tids "all backends registered" expected_ids (Registry.ids ());
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "backend %s not found" id
      | Some b ->
          let module Bx = (val b : B.S) in
          check tstr "module id matches its registry key" id Bx.id)
    expected_ids;
  (* re-registering the same module is idempotent *)
  (match Registry.find "closure" with
  | Some b -> Registry.register b
  | None -> Alcotest.fail "closure backend missing");
  check tids "re-register changes nothing" expected_ids (Registry.ids ());
  (* a different module fighting over a taken id fails loudly *)
  check tbool "duplicate id raises" true
    (match Registry.register (fake_backend "closure") with
    | () -> false
    | exception Registry.Duplicate_id "closure" -> true
    | exception _ -> false);
  (* ensure_registered is callable any number of times *)
  Dmll.Backends.ensure_registered ();
  check tids "registry stable after re-ensure" expected_ids (Registry.ids ())

let test_target_resolution () =
  let open Dmll in
  let cases =
    [ (Sequential, "closure");
      (Multicore 2, "multicore");
      ( Numa
          { Dmll_runtime.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
            threads = 4;
            mode = Dmll_runtime.Sim_numa.Numa_aware;
          },
        "sim-numa" );
      (Gpu { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true },
       "sim-gpu");
      (Cluster Dmll_runtime.Sim_cluster.default_config, "sim-cluster");
      (Proc_cluster Dmll_runtime.Proc_cluster.default_config, "proc-cluster");
      (Net_cluster Dmll_runtime.Net_cluster.default_config, "net-cluster");
      (Native, "native");
    ]
  in
  List.iter
    (fun (target, id) ->
      check tstr "target maps to its backend id" id
        (Dmll.Backends.id_of_target target);
      check tbool "and that id resolves in the registry" true
        (Registry.find id <> None))
    cases;
  (* the human table mentions every backend *)
  let table = Registry.describe_table () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun id -> check tbool ("describe_table lists " ^ id) true (contains table id))
    expected_ids

(* ---------------- capability golden JSON schema ----------------------- *)

open Dmll_testgen.Json_check

let cap_keys =
  [ "wall_clock"; "parallel"; "distributed"; "fault_injection";
    "checkpointing"; "mem_budget"; "emits_source"; "cacheable_kernels" ]

let test_registry_json_schema () =
  let doc = parse (Registry.to_json ()) in
  check tids "top-level keys" [ "backends" ] (keys_of doc);
  let backends = arr (field doc "backends") in
  check tids "every backend present, sorted" expected_ids
    (List.map (fun b -> str (field b "id")) backends);
  List.iter
    (fun b ->
      check tids "entry keys" [ "id"; "describe"; "capabilities" ] (keys_of b);
      check tbool "describe is non-empty" true
        (String.length (str (field b "describe")) > 0);
      let caps = field b "capabilities" in
      check tids "exactly the eight capability flags" cap_keys (keys_of caps);
      List.iter (fun k -> ignore (boolean (field caps k))) cap_keys)
    backends;
  let cap_of id k =
    let b = List.find (fun b -> String.equal (str (field b "id")) id) backends in
    boolean (field (field b "capabilities") k)
  in
  (* spot-check the contract the driver relies on *)
  check tbool "native caches kernels" true (cap_of "native" "cacheable_kernels");
  check tbool "native emits source" true (cap_of "native" "emits_source");
  check tbool "native reports wall time" true (cap_of "native" "wall_clock");
  check tbool "closure emits nothing" false (cap_of "closure" "emits_source");
  check tbool "closure caches nothing" false (cap_of "closure" "cacheable_kernels");
  check tbool "sim-cluster is distributed" true (cap_of "sim-cluster" "distributed");
  check tbool "sim-cluster clock is modeled" false (cap_of "sim-cluster" "wall_clock");
  check tbool "sim-cluster honors memory budgets" true (cap_of "sim-cluster" "mem_budget");
  check tbool "net-cluster injects faults" true (cap_of "net-cluster" "fault_injection");
  check tbool "proc-cluster is distributed" true (cap_of "proc-cluster" "distributed");
  check tbool "sim-gpu emits source" true (cap_of "sim-gpu" "emits_source")

(* ------------------------ cache key hygiene --------------------------- *)

(* Two calls mint fresh gensyms, so the programs are alpha-equivalent but
   textually different — the canonical blob must erase the difference. *)
let letchain (k : int) : Exp.exp =
  let x = Sym.fresh ~name:"x" Types.Int in
  let y = Sym.fresh ~name:"y" Types.Int in
  Exp.Let
    (x, Exp.Const (Exp.Cint k),
     Exp.Let (y, Exp.Var x, Exp.Tuple [ Exp.Var x; Exp.Var y ]))

let test_cache_key () =
  let key = Cache.key ~backend_id:"native" ~caps_fp:"fp" in
  check tstr "alpha-equivalent programs share a key" (key (letchain 7))
    (key (letchain 7));
  check tbool "a different constant changes the key" true
    (key (letchain 7) <> key (letchain 8));
  check tbool "the backend id is part of the key" true
    (Cache.key ~backend_id:"native" ~caps_fp:"fp" (letchain 7)
    <> Cache.key ~backend_id:"other" ~caps_fp:"fp" (letchain 7));
  check tbool "the capability fingerprint is part of the key" true
    (Cache.key ~backend_id:"native" ~caps_fp:"fp" (letchain 7)
    <> Cache.key ~backend_id:"native" ~caps_fp:"fp2" (letchain 7));
  let m = Cache.module_name_of_key (key (letchain 7)) in
  check tbool "module name is a valid compilation unit" true
    (String.length m > 0
    && m.[0] = 'D'
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_')
         m)

(* ---------------------- cache tiers and commit ------------------------ *)

let store_payload cache ~key payload =
  Cache.store cache ~key ~kind:Cache.Exe ~source:"(* generated *)"
    ~artifact:"a.bin"
    ~build:(fun ~dir ->
      write_file (Filename.concat dir "a.bin") payload;
      Ok ())
    ()

let entry_of = function
  | Ok (e : Cache.entry) -> e
  | Error m -> Alcotest.failf "store failed: %s" m

let test_cache_tiers () =
  let cache = Cache.create ~root:(fresh_root ()) () in
  let e = entry_of (store_payload cache ~key:"k1" "payload-1") in
  check tstr "artifact committed with its payload" "payload-1"
    (Cache.read_all e.Cache.artifact);
  (match Cache.find cache "k1" with
  | Some (_, Cache.Memory) -> ()
  | Some (_, Cache.Disk) -> Alcotest.fail "fresh store should hit memory"
  | None -> Alcotest.fail "stored entry not found");
  Cache.drop_memory cache;
  check tint "memory dropped" 0 (Cache.memory_size cache);
  (match Cache.find cache "k1" with
  | Some (e2, Cache.Disk) ->
      check tstr "disk tier returns the committed artifact" "payload-1"
        (Cache.read_all e2.Cache.artifact)
  | Some (_, Cache.Memory) -> Alcotest.fail "memory tier should be empty"
  | None -> Alcotest.fail "disk entry not found");
  (match Cache.find cache "k1" with
  | Some (_, Cache.Memory) -> ()
  | _ -> Alcotest.fail "disk hit should repopulate the memory tier");
  check tbool "unknown key misses" true (Cache.find cache "nope" = None);
  Cache.remove cache "k1";
  check tbool "removed key misses" true (Cache.find cache "k1" = None)

let test_cache_lru () =
  let cache = Cache.create ~root:(fresh_root ()) ~capacity:4 () in
  for i = 1 to 10 do
    ignore (entry_of (store_payload cache ~key:(Printf.sprintf "k%d" i)
                        (Printf.sprintf "p%d" i)))
  done;
  check tbool "memory tier is capacity-bounded" true
    (Cache.memory_size cache <= 4);
  (* eviction drops only the handle: every key still answers from disk *)
  for i = 1 to 10 do
    match Cache.find cache (Printf.sprintf "k%d" i) with
    | Some (e, _) ->
        check tstr "evicted entries survive on disk"
          (Printf.sprintf "p%d" i)
          (Cache.read_all e.Cache.artifact)
    | None -> Alcotest.failf "k%d lost by eviction" i
  done

let test_cache_corruption () =
  let cache = Cache.create ~root:(fresh_root ()) () in
  (* bit rot in the artifact: checksum mismatch rejects and deletes *)
  let e = entry_of (store_payload cache ~key:"rot" "good-bytes") in
  write_file e.Cache.artifact "evil-bytes";
  Cache.drop_memory cache;
  check tbool "corrupt artifact rejected" true (Cache.find cache "rot" = None);
  check tbool "corrupt entry deleted from disk" false (Sys.file_exists e.Cache.dir);
  (* ... and the key is immediately reusable: the recompile commits *)
  let e2 = entry_of (store_payload cache ~key:"rot" "good-bytes") in
  check tstr "recompiled entry readable" "good-bytes"
    (Cache.read_all e2.Cache.artifact);
  (* torn META (truncated mid-write without the atomic rename) *)
  let e3 = entry_of (store_payload cache ~key:"torn" "torn-payload") in
  write_file (Filename.concat e3.Cache.dir "META") "DMLLKERN1\nkind=exe\n";
  Cache.drop_memory cache;
  check tbool "torn META rejected" true (Cache.find cache "torn" = None);
  check tbool "torn entry deleted" false (Sys.file_exists e3.Cache.dir);
  (* missing META entirely *)
  let e4 = entry_of (store_payload cache ~key:"bare" "bare-payload") in
  Sys.remove (Filename.concat e4.Cache.dir "META");
  Cache.drop_memory cache;
  check tbool "entry without META rejected" true (Cache.find cache "bare" = None);
  (* missing artifact with an intact META *)
  let e5 = entry_of (store_payload cache ~key:"gone" "gone-payload") in
  Sys.remove e5.Cache.artifact;
  Cache.drop_memory cache;
  check tbool "entry without artifact rejected" true
    (Cache.find cache "gone" = None);
  (* a failing build never commits *)
  (match
     Cache.store cache ~key:"fail" ~kind:Cache.Exe ~source:"s" ~artifact:"a"
       ~build:(fun ~dir:_ -> Error "simulated compiler failure") ()
   with
  | Ok _ -> Alcotest.fail "failed build must not commit"
  | Error _ -> ());
  check tbool "failed build leaves no entry" true (Cache.find cache "fail" = None);
  (* no tmp-* build directories linger after any of the above *)
  let stray =
    Sys.readdir (Cache.root cache)
    |> Array.to_list
    |> List.filter (fun f -> String.length f >= 4 && String.sub f 0 4 = "tmp-")
  in
  check tids "no stray build directories" [] stray

(* -------------- twelve-app cache hit/miss determinism ----------------- *)

let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 ()
let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data
let lr_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:5 ~classes:2 ()
let q1_table = Dmll_data.Tpch.generate ~rows:200 ()
let gene_reads = Dmll_data.Genes.generate ~reads:200 ~barcodes:10 ()

let pr_graph =
  Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:4 ())

let tri_graph =
  Dmll_graph.Csr.of_edges
    (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:4 ~edge_factor:3 ()))

let knn_train = Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 ()
let knn_test = Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 ()
let nb_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 ()
let gibbs_graph = Dmll_data.Factor_graph.generate ~vars:30 ~factors:80 ()
let gibbs_state = Dmll_data.Factor_graph.initial_state gibbs_graph
let gibbs_rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 gibbs_graph

(* The twelve apps (the test_plan/test_comm fixture table, small sizes). *)
let apps : (string * Exp.exp * (string * V.t) list) list =
  let open Dmll_apps in
  [ ( "kmeans",
      Kmeans.program ~rows:60 ~cols:6 ~k:3 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "logreg",
      Logreg.program ~rows:50 ~cols:5 ~alpha:0.01 (),
      Logreg.inputs lr_data ~theta:(Array.make 5 0.1) );
    ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "tpch_q1",
      Tpch_q1.program (),
      Tpch_q1.aos_inputs q1_table @ Tpch_q1.soa_inputs q1_table );
    ( "gene",
      Gene.program (),
      Gene.aos_inputs gene_reads @ Gene.soa_inputs gene_reads );
    ( "pagerank_pull",
      Pagerank.program_pull ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ( "pagerank_push",
      Pagerank.program_push ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ("tricount", Tricount.program (), Tricount.inputs tri_graph);
    ( "knn",
      Knn.program ~train_rows:40 ~test_rows:12 ~cols:4 (),
      Knn.inputs ~train:knn_train ~test:knn_test );
    ( "naive_bayes",
      Naive_bayes.program ~rows:50 ~cols:4 (),
      Naive_bayes.inputs nb_data );
    ( "gibbs",
      Gibbs.program ~nvars:30 ~replicas:2 (),
      Gibbs.inputs gibbs_graph ~state:gibbs_state ~rand:gibbs_rand );
    ( "ridge",
      Ridge.program ~rows:50 ~cols:5 ~alpha:0.001 ~lambda:0.1 (),
      Ridge.inputs lr_data ~theta:(Array.make 5 0.2) );
  ]

(* The second execution of an identical plan must do zero codegen and
   zero compilation (kernel_cache_hit, no kernel_cache_miss) and produce
   a bit-identical value.  Apps the OCaml codegen cannot express yet are
   skipped — but most must compile, or the test is vacuous. *)
let test_twelve_app_determinism () =
  if not (Lazy.force Native.available) then
    Printf.printf "ocamlfind/ocamlopt unavailable; determinism test skipped\n"
  else begin
    let cache = Cache.create ~root:(fresh_root ()) () in
    let compiled = ref 0 in
    List.iter
      (fun (name, program, inputs) ->
        let opt = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
        let m1 = Metrics.create () in
        match Native.run_best ~cache ~metrics:m1 ~runs:1 ~inputs opt with
        | exception Backend.Codegen_ocaml.Unsupported _ -> ()
        | r1 ->
            incr compiled;
            check tint (name ^ ": cold run compiles once") 1
              (Metrics.count m1 "kernel_cache_miss");
            check tint (name ^ ": cold run has no hit") 0
              (Metrics.count m1 "kernel_cache_hit");
            let m2 = Metrics.create () in
            let r2 = Native.run_best ~cache ~metrics:m2 ~runs:1 ~inputs opt in
            check tint (name ^ ": warm run hits the cache") 1
              (Metrics.count m2 "kernel_cache_hit");
            check tint (name ^ ": warm run does zero compilation") 0
              (Metrics.count m2 "kernel_cache_miss");
            check tbool (name ^ ": cached value bit-identical") true
              (String.equal
                 (Marshal.to_string r1.Native.value [])
                 (Marshal.to_string r2.Native.value []));
            (* and the cache never changed what was computed *)
            check tbool (name ^ ": value matches the interpreter") true
              (V.approx_equal ~eps:1e-9
                 (Dmll_interp.Interp.run ~inputs opt)
                 r1.Native.value))
      apps;
    check tbool
      (Printf.sprintf "most apps natively compile (%d/12)" !compiled)
      true
      (!compiled >= 8)
  end

(* ----------------- corrupt entry recompiles end-to-end ---------------- *)

let test_native_corrupt_recompile () =
  if not (Lazy.force Native.available) then ()
  else begin
    let cache = Cache.create ~root:(fresh_root ()) () in
    let program = Dmll_apps.Kmeans.program ~rows:16 ~cols:3 ~k:2 () in
    let data = Dmll_data.Gaussian.generate ~rows:16 ~cols:3 ~classes:2 () in
    let inputs =
      Dmll_apps.Kmeans.inputs data
        ~centroids:(Dmll_data.Gaussian.random_centroids ~k:2 data)
    in
    let opt = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
    let m1 = Metrics.create () in
    (* force the child-process path: it shares the cache discipline and
       keeps this test independent of Dynlink availability *)
    let r1 = Native.run ~cache ~metrics:m1 ~runs:1 ~inputs opt in
    check tint "first run compiles" 1 (Metrics.count m1 "kernel_cache_miss");
    let key = Native.cache_key opt ^ "-exe" in
    (match Cache.find cache key with
    | None -> Alcotest.fail "compiled kernel not committed under its key"
    | Some (e, _) ->
        (* storage rot on the committed executable *)
        write_file e.Cache.artifact "not an executable";
        Cache.drop_memory cache;
        check tbool "rotten kernel rejected" true (Cache.find cache key = None);
        check tbool "rotten entry deleted" false (Sys.file_exists e.Cache.dir));
    let m2 = Metrics.create () in
    let r2 = Native.run ~cache ~metrics:m2 ~runs:1 ~inputs opt in
    check tint "rejected entry forces a recompile" 1
      (Metrics.count m2 "kernel_cache_miss");
    check tbool "recompiled value identical" true
      (String.equal
         (Marshal.to_string r1.Native.value [])
         (Marshal.to_string r2.Native.value []))
  end

(* ------------------- QCheck: Dynlink = child process ------------------ *)

(* Both paths compile the same generated source, so their values must be
   exactly equal — and both must agree with the interpreter.  Each leg
   compiles with ocamlopt, so the count trades coverage against suite
   wall-time; DMLL_SEAM_QCHECK overrides it. *)
let qcheck_count =
  match Sys.getenv_opt "DMLL_SEAM_QCHECK" with
  | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 100)
  | None -> 100

let prop_jit_equals_child =
  let cache = Cache.create ~root:(fresh_root ()) () in
  QCheck.Test.make ~count:qcheck_count
    ~name:"Dynlink JIT = child process on random programs"
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      if not (Lazy.force Native.Jit.available) then QCheck.assume_fail ()
      else
        match Interp.run e with
        | exception Interp.Runtime_error _ -> QCheck.assume_fail ()
        | expected -> (
            match
              ( Native.Jit.run ~cache ~runs:1 ~inputs:[] e,
                Native.run ~cache ~runs:1 ~inputs:[] e )
            with
            | exception Backend.Codegen_ocaml.Unsupported _ ->
                QCheck.assume_fail ()
            | jit, child ->
                V.equal jit.Native.value child.Native.value
                && V.approx_equal ~eps:1e-9 expected jit.Native.value))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "seam"
    [ ( "registry",
        [ Alcotest.test_case "round-trip" `Quick test_registry_roundtrip;
          Alcotest.test_case "target resolution" `Quick test_target_resolution;
          Alcotest.test_case "capability JSON schema" `Quick
            test_registry_json_schema;
        ] );
      ( "kernel-cache",
        [ Alcotest.test_case "key hygiene" `Quick test_cache_key;
          Alcotest.test_case "tiers" `Quick test_cache_tiers;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
          Alcotest.test_case "corruption" `Quick test_cache_corruption;
        ] );
      ( "native",
        [ Alcotest.test_case "twelve-app determinism" `Slow
            test_twelve_app_determinism;
          Alcotest.test_case "corrupt kernel recompiles" `Slow
            test_native_corrupt_recompile;
          qcheck prop_jit_equals_child;
        ] );
    ]

(* Tests of the analysis library: affine forms, read-stencil
   classification, Algorithm-1 partitioning with stencil-triggered
   rewrites, and the cost model. *)

open Dmll_ir
open Dmll_analysis
open Exp
open Builder

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let stencil : Stencil.t Alcotest.testable =
  Alcotest.testable Stencil.pp ( = )

(* ---------------- linear ---------------- *)

let test_linear_forms () =
  let i = Sym.fresh ~name:"i" Types.Int in
  let j = Sym.fresh ~name:"j" Types.Int in
  let c = Sym.fresh ~name:"c" Types.Int in
  (* i -> (1, 0) *)
  (match Linear.in_index i (Var i) with
  | Some (a, b) ->
      check tbool "coeff 1" true (Linear.is_one a);
      check tbool "offset 0" true (Linear.is_zero b)
  | None -> Alcotest.fail "i is linear in i");
  (* i*c + j -> (c, j) *)
  (match Linear.in_index i ((Var i *! Var c) +! Var j) with
  | Some (a, b) ->
      check tbool "coeff c" true (Linear.coeff_equal a (Var c));
      check tbool "offset j" true (Linear.coeff_equal b (Var j))
  | None -> Alcotest.fail "row subscript is linear");
  (* j alone -> (0, j) *)
  (match Linear.in_index i (Var j) with
  | Some (a, _) -> check tbool "coeff 0" true (Linear.is_zero a)
  | None -> Alcotest.fail "free exp is linear");
  (* i*i is not linear *)
  check tbool "quadratic rejected" true (Linear.in_index i (Var i *! Var i) = None);
  (* 2*i + 3 *)
  (match Linear.in_index i ((int_ 2 *! Var i) +! int_ 3) with
  | Some (a, b) ->
      check tbool "coeff 2" true (Linear.coeff_equal a (int_ 2));
      check tbool "offset 3" true (Linear.coeff_equal b (int_ 3))
  | None -> Alcotest.fail "2i+3 is linear")

(* ---------------- stencil ---------------- *)

let xs = Input ("xs", Types.Arr Types.Float, Partitioned)

let loop_of e = match e with Loop l -> l | _ -> Alcotest.fail "expected loop"

let stencil_of_xs l =
  match Stencil.lookup (Stencil.Tinput "xs") (Stencil.of_loop l) with
  | Some s -> s
  | None -> Alcotest.fail "xs not read"

let test_stencil_interval () =
  let l = loop_of (collect ~size:(Len xs) (fun i -> read xs i *. float_ 2.0)) in
  check stencil "element access" Stencil.Interval (stencil_of_xs l)

let test_stencil_const () =
  let l = loop_of (collect ~size:(int_ 10) (fun _ -> read xs (int_ 3))) in
  check stencil "constant access" Stencil.Const (stencil_of_xs l)

let test_stencil_all () =
  (* every iteration sums the whole array *)
  let l =
    loop_of
      (collect ~size:(int_ 4) (fun _ ->
           fsum ~size:(Len xs) (fun j -> read xs j)))
  in
  check stencil "whole-collection access" Stencil.All (stencil_of_xs l)

let test_stencil_unknown () =
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let l = loop_of (collect ~size:(Len xs) (fun i -> read xs (Read (perm, i)))) in
  check stencil "data-dependent access" Stencil.Unknown (stencil_of_xs l)

let test_stencil_row () =
  (* row access: xs(i*cols + j) with the inner loop sweeping exactly cols *)
  let cols = int_ 10 in
  let l =
    loop_of
      (collect ~size:(int_ 50) (fun i ->
           fsum ~size:cols (fun j -> read xs ((i *! cols) +! j))))
  in
  check stencil "row access" Stencil.Interval (stencil_of_xs l);
  (* mismatched sweep: inner loop is narrower than the stride *)
  let l2 =
    loop_of
      (collect ~size:(int_ 50) (fun i ->
           fsum ~size:(int_ 5) (fun j -> read xs ((i *! cols) +! j))))
  in
  check stencil "partial row is not Interval" Stencil.Unknown (stencil_of_xs l2)

let test_stencil_column () =
  (* column access xs(j*cols + i): stride in the inner index — every outer
     iteration touches the whole array *)
  let cols = int_ 10 in
  let l =
    loop_of
      (collect ~size:cols (fun i ->
           fsum ~size:(int_ 50) (fun j -> read xs ((j *! cols) +! i))))
  in
  (* relative to the outer index the access is linear with coefficient 1
     but the inner sweep has stride cols: must not be classified Interval *)
  check tbool "column access is not Interval" true
    (stencil_of_xs l <> Stencil.Interval)

let test_stencil_shifted () =
  (* i + c: a bounded halo — still partition-friendly, unlike All *)
  let l = loop_of (collect ~size:(Len xs) (fun i -> read xs (i +! int_ 2))) in
  check stencil "i+2" (Stencil.Interval_shifted 2) (stencil_of_xs l);
  let l2 = loop_of (collect ~size:(Len xs) (fun i -> read xs (i -! int_ 1))) in
  check stencil "i-1" (Stencil.Interval_shifted (-1)) (stencil_of_xs l2);
  check tbool "halo is local-friendly" true
    (Stencil.local_friendly (Stencil.Interval_shifted 2));
  check tint "halo width is |c|" 3 (Stencil.halo_width (Stencil.Interval_shifted (-3)))

let test_stencil_golden_table () =
  (* one row per subscript shape the classifier distinguishes *)
  let c = Sym.fresh ~name:"c" Types.Int in
  let cols = int_ 10 in
  let cases =
    [ ("i", collect ~size:(Len xs) (fun i -> read xs i), Stencil.Interval);
      ("constant", collect ~size:(int_ 10) (fun _ -> read xs (int_ 3)), Stencil.Const);
      ("i+2", collect ~size:(Len xs) (fun i -> read xs (i +! int_ 2)),
        Stencil.Interval_shifted 2);
      ("i-1", collect ~size:(Len xs) (fun i -> read xs (i -! int_ 1)),
        Stencil.Interval_shifted (-1));
      (* symbolic offset: no static halo bound, must stay Unknown *)
      ("i+c (symbolic)", collect ~size:(Len xs) (fun i -> read xs (i +! Var c)),
        Stencil.Unknown);
      ("covering row",
        collect ~size:(int_ 50) (fun i ->
            fsum ~size:cols (fun j -> read xs ((i *! cols) +! j))),
        Stencil.Interval);
      ("partial row",
        collect ~size:(int_ 50) (fun i ->
            fsum ~size:(int_ 5) (fun j -> read xs ((i *! cols) +! j))),
        Stencil.Unknown);
      ("inner sweep",
        collect ~size:(int_ 4) (fun _ -> fsum ~size:(Len xs) (fun j -> read xs j)),
        Stencil.All);
      ("data-dependent",
        collect ~size:(Len xs) (fun i ->
            read xs (Read (Input ("perm", Types.Arr Types.Int, Local), i))),
        Stencil.Unknown);
    ]
  in
  List.iter
    (fun (name, e, expect) -> check stencil name expect (stencil_of_xs (loop_of e)))
    cases

let test_stencil_join () =
  check stencil "join const interval" Stencil.Interval
    (Stencil.join Stencil.Const Stencil.Interval);
  check stencil "join interval unknown" Stencil.Unknown
    (Stencil.join Stencil.Interval Stencil.Unknown);
  check stencil "join shifted widens" (Stencil.Interval_shifted (-3))
    (Stencil.join (Stencil.Interval_shifted (-3)) (Stencil.Interval_shifted 1));
  check stencil "join shifted absorbs interval" (Stencil.Interval_shifted 1)
    (Stencil.join Stencil.Interval (Stencil.Interval_shifted 1));
  (* join is commutative, associative, idempotent *)
  let all =
    Stencil.
      [ Interval; Const; All; Unknown; Interval_shifted 1; Interval_shifted (-1);
        Interval_shifted 2 ]
  in
  List.iter
    (fun a ->
      check stencil "idempotent" a (Stencil.join a a);
      List.iter
        (fun b ->
          check stencil "commutative" (Stencil.join a b) (Stencil.join b a);
          List.iter
            (fun c ->
              check stencil "associative"
                (Stencil.join a (Stencil.join b c))
                (Stencil.join (Stencil.join a b) c))
            all)
        all)
    all

let test_global_join () =
  (* one loop reads by element, another reads the whole thing: the global
     stencil must be the join (All) *)
  let e =
    bind ~ty:(Types.Arr Types.Float)
      (map_arr xs (fun v -> v *. float_ 2.0))
      (fun _ ->
        collect ~size:(int_ 3) (fun _ -> fsum ~size:(Len xs) (fun j -> read xs j)))
  in
  match Stencil.lookup (Stencil.Tinput "xs") (Stencil.global e) with
  | Some s -> check stencil "global join" Stencil.All s
  | None -> Alcotest.fail "xs not found globally"

(* ---------------- partitioning ---------------- *)

let mini_kmeans ~k =
  (* data : partitioned; per-cluster sums via conditional reduce over the
     whole dataset — the shared-memory k-means shape of Figure 1 *)
  let data = Sym.fresh ~name:"data" (Types.Arr Types.Float) in
  let asg = Sym.fresh ~name:"assigned" (Types.Arr Types.Int) in
  Let
    ( data,
      Input ("data", Types.Arr Types.Float, Partitioned),
      Let
        ( asg,
          collect ~size:(len (Var data)) (fun i ->
              f2i (read (Var data) i) %! int_ k),
          collect ~size:(int_ k) (fun kk ->
              fsum
                ~cond:(fun j -> read (Var asg) j =! kk)
                ~size:(len (Var data))
                (fun j -> read (Var data) j)) ) )

let test_partition_seeds () =
  let e = mini_kmeans ~k:3 in
  let r = Partition.analyze ~transforms:[] e in
  check tbool "data partitioned" true
    (Partition.layout_of (Stencil.Tinput "data") r.Partition.layouts = Partitioned)

let test_partition_propagates () =
  (* a map over partitioned data is partitioned; a reduce is local *)
  let data = Sym.fresh ~name:"d" (Types.Arr Types.Float) in
  let e =
    Let
      ( data,
        Input ("data", Types.Arr Types.Float, Partitioned),
        bind ~name:"m" ~ty:(Types.Arr Types.Float)
          (map_arr (Var data) (fun v -> v *. float_ 2.0))
          (fun m ->
            bind ~name:"red" ~ty:Types.Float
              (fsum ~size:(len m) (fun i -> read m i))
              (fun s -> s)) )
  in
  (* analyze the unoptimized program so the intermediate map survives *)
  let r = Partition.analyze ~transforms:[] ~reoptimize:(fun e -> e) e in
  let find name =
    List.find_map
      (fun (t, l) ->
        match t with
        | Stencil.Tsym s when String.equal (Sym.name s) name -> Some l
        | _ -> None)
      r.Partition.layouts
  in
  check tbool "map output partitioned" true (find "m" = Some Partitioned);
  check tbool "reduce output local" true (find "red" = Some Local);
  check tbool "data itself partitioned" true (find "d" = Some Partitioned)

let test_partition_triggers_conditional_reduce () =
  let e = mini_kmeans ~k:3 in
  let r = Partition.analyze e in
  check tbool "conditional-reduce applied" true
    (List.mem "conditional-reduce" r.Partition.rewrites_applied);
  (* after the rewrite no partitioned collection has a bad stencil *)
  check tbool "no remote-access warnings" true
    (List.for_all
       (function Partition.Remote_access _ -> false | _ -> true)
       r.Partition.warnings);
  (* and the rewritten program computes the same result *)
  let inputs = [ ("data", Dmll_interp.Value.of_float_array [| 0.; 1.; 2.; 3.; 4.; 5. |]) ] in
  check tbool "rewritten program equivalent" true
    (Dmll_interp.Value.approx_equal
       (Dmll_interp.Interp.run ~inputs e)
       (Dmll_interp.Interp.run ~inputs r.Partition.program))

let test_partition_fallback_warning () =
  (* a genuine gather: no rewrite applies, so the runtime must move data *)
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let e = collect ~size:(Len xs) (fun i -> read xs (Read (perm, i))) in
  let r = Partition.analyze e in
  check tbool "remote access warned" true
    (List.exists
       (function Partition.Remote_access (Stencil.Tinput "xs", _) -> true | _ -> false)
       r.Partition.warnings)

let test_partition_sequential_warning () =
  let e = Read (xs, int_ 0) in
  let r = Partition.analyze ~transforms:[] e in
  check tbool "sequential deref warned" true
    (List.exists
       (function Partition.Sequential_on_partitioned _ -> true | _ -> false)
       r.Partition.warnings);
  (* Len is whitelisted: no warning *)
  let r2 = Partition.analyze ~transforms:[] (Len xs) in
  check tint "len draws no warning" 0 (List.length r2.Partition.warnings)

let test_co_partitioning () =
  let ys = Input ("ys", Types.Arr Types.Float, Partitioned) in
  let e = zip_with xs ys ( +. ) in
  let r = Partition.analyze ~transforms:[] e in
  check tbool "xs and ys co-partitioned" true
    (List.exists
       (fun (a, b) ->
         let n = Stencil.target_to_string in
         (n a = "xs" && n b = "ys") || (n a = "ys" && n b = "xs"))
       r.Partition.co_partitioned)

let test_co_partitioning_dedup () =
  (* two loops consume the same aligned pair: the requirement is reported
     once, not once per consuming loop *)
  let ys = Input ("ys", Types.Arr Types.Float, Partitioned) in
  let e =
    bind ~ty:(Types.Arr Types.Float)
      (zip_with xs ys ( +. ))
      (fun _ -> zip_with xs ys ( *. ))
  in
  let r = Partition.analyze ~transforms:[] ~reoptimize:(fun e -> e) e in
  check tint "pair reported once" 1 (List.length r.Partition.co_partitioned)

(* ---------------- cost-guided rewrite decisions ---------------- *)

let test_partition_decisions_recorded () =
  (* default lengths: the conditional-reduce rewrite wins, and the decision
     log records the rejected "keep" alternative with a strictly larger
     predicted communication volume *)
  let r = Partition.analyze (mini_kmeans ~k:3) in
  match r.Partition.decisions with
  | [] -> Alcotest.fail "no decision recorded"
  | d :: _ ->
      check tbool "conditional-reduce chosen" true
        (String.equal d.Partition.chosen "conditional-reduce");
      check tbool "keep was a candidate" true
        (List.mem_assoc "keep" d.Partition.candidates);
      check tbool "chosen strictly cheaper than keep" true
        (List.assoc "conditional-reduce" d.Partition.candidates
        < List.assoc "keep" d.Partition.candidates)

let test_partition_cost_guided_keep () =
  (* with real (tiny) input sizes the rewrite's per-node bucket shuffles
     cost more than just replicating the small collections: the cost-guided
     search keeps the program, where the old first-improvement search would
     have rewritten unconditionally — and the rejected rewrite is recorded *)
  let r = Partition.analyze ~input_lens:[ ("data", 32) ] (mini_kmeans ~k:3) in
  check tbool "no rewrite applied on tiny data" true
    (r.Partition.rewrites_applied = []);
  match r.Partition.decisions with
  | [] -> Alcotest.fail "no decision recorded"
  | d :: _ ->
      check tbool "keep chosen" true (String.equal d.Partition.chosen "keep");
      check tbool "a rejected rewrite is recorded" true
        (List.exists (fun (n, _) -> not (String.equal n "keep")) d.Partition.candidates)

let fixpoint_fusion e =
  let trace = Dmll_opt.Rewrite.new_trace () in
  Dmll_opt.Rewrite.fixpoint Dmll_opt.Fusion.rules trace e

let test_fusion_comm_tiebreak () =
  (* a master-only loop over a Local collection next to a distributed loop:
     fusing them forces a broadcast of the local collection *)
  let lc = Input ("lc", Types.Arr Types.Float, Local) in
  let pc = Input ("pc", Types.Arr Types.Float, Partitioned) in
  let a = Sym.fresh ~name:"a" (Types.Arr Types.Float) in
  let b = Sym.fresh ~name:"b" (Types.Arr Types.Float) in
  let e =
    Let
      ( a,
        collect ~size:(int_ 8) (fun i -> read lc i *. float_ 2.0),
        Let
          ( b,
            collect ~size:(int_ 8) (fun i -> read pc i +. float_ 1.0),
            Tuple [ Var a; Var b ] ) )
  in
  let count_loops e = List.length (Stencil.outer_loops e) in
  (* no objective installed (shared-memory targets): the loops fuse *)
  check tint "no objective: loops fuse" 1 (count_loops (fixpoint_fusion e));
  (* the predicted-volume objective, threaded as a plain closure, vetoes
     the volume-increasing fusion and reports each decline *)
  let rejections = ref 0 in
  let rules =
    Dmll_opt.Fusion.rules_with
      ~objective:(fun e -> Partition.predicted_volume e)
      ~on_reject:(fun () -> incr rejections)
      ()
  in
  let trace = Dmll_opt.Rewrite.new_trace () in
  let fused = Dmll_opt.Rewrite.fixpoint rules trace e in
  check tint "objective: fusion declined" 2 (count_loops fused);
  check tbool "rejection counted" true (!rejections > 0)

(* predicted volume never decreases as the stencil coarsens: the optimizer
   may rank rewrites by it without a coarser classification ever looking
   cheaper *)
let arb_stencil =
  QCheck.make
    ~print:Stencil.to_string
    (QCheck.Gen.oneof
       [ QCheck.Gen.oneofl Stencil.[ Const; Interval; All; Unknown ];
         QCheck.Gen.map
           (fun c -> Stencil.Interval_shifted c)
           (QCheck.Gen.int_range (-8) 8);
       ])

let prop_stencil_bytes_monotone =
  QCheck.Test.make ~count:500
    ~name:"predicted comm volume is monotone under the stencil join"
    (QCheck.pair arb_stencil arb_stencil)
    (fun (a, b) ->
      let bytes s =
        Comm.stencil_bytes ~nodes:4 ~elem_bytes:8.0 ~collection_bytes:4096.0 s
      in
      let j = Stencil.join a b in
      bytes a <= bytes j && bytes b <= bytes j)

(* ---------------- cost ---------------- *)

let test_cost_basics () =
  let l = loop_of (fsum ~size:(Len xs) (fun i -> read xs i *. read xs i)) in
  let c = Cost.loop_per_iter l in
  check tbool "flops counted" true (c.Cost.flops > 1.0);
  check tbool "reads counted" true (c.Cost.bytes_read >= 16.0)

let test_cost_scaling () =
  let ev = Cost.size_evaluator [ ("xs", 1000) ] in
  let e = fsum ~size:(Len xs) (fun i -> read xs i) in
  let c = Cost.of_program ~eval_size:ev e in
  (* 1000 elements, 8 bytes each *)
  check tbool "total read volume" true
    (c.Cost.bytes_read >= 8000.0 && c.Cost.bytes_read < 16000.0);
  let nested =
    collect ~size:(int_ 10) (fun _ -> fsum ~size:(Len xs) (fun i -> read xs i))
  in
  let cn = Cost.of_program ~eval_size:ev nested in
  check tbool "nested loop multiplies" true (cn.Cost.bytes_read >= 80000.0)

let test_size_evaluator () =
  let ev = Cost.size_evaluator [ ("xs", 42) ] in
  check tbool "const" true (ev (int_ 7) = Some 7);
  check tbool "len input" true (ev (Len xs) = Some 42);
  check tbool "product" true (ev (Len xs *! int_ 2) = Some 84);
  check tbool "unknown" true (ev (Var (Sym.fresh Types.Int)) = None)

(* ---------------- verifier: rule triggers ---------------- *)

(* Each hand-written bad program must trigger exactly its rule id. *)

let has_rule = Diag.has_rule

let errors_with rule ds =
  List.exists (fun d -> Diag.is_error d && String.equal d.Diag.rule rule) ds

let eff ?(ename = "log_row") ?(ety = Types.Float) eargs =
  Extern { ename; eargs; ety; whitelisted = false }

let test_verify_clean_program () =
  let ds = Verify.run (mini_kmeans ~k:3) in
  check tbool "no errors on a good program" false (Diag.has_errors ds);
  check tbool "float-reduce warning present" true (has_rule ds "V-REDUCE-FLOAT")

let test_verify_unbound () =
  let ds = Verify.run (Var (Sym.fresh ~name:"ghost" Types.Int)) in
  check tbool "unbound symbol" true (errors_with "V-SCOPE-UNBOUND" ds);
  (* declaring the symbol silences the rule *)
  let s = Sym.fresh ~name:"fine" Types.Int in
  let ds' = Verify.run ~declared:(Sym.Set.singleton s) (Var s) in
  check tbool "declared symbol ok" false (Diag.has_errors ds')

let test_verify_rebound () =
  let s = Sym.fresh ~name:"x" Types.Int in
  let ds = Verify.run (Let (s, int_ 1, Let (s, int_ 2, Var s))) in
  check tbool "rebound symbol" true (errors_with "V-SCOPE-REBOUND" ds)

let test_verify_empty_loop () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let ds = Verify.run (Loop { size = int_ 3; idx; gens = [] }) in
  check tbool "empty multiloop" true (errors_with "V-LOOP-EMPTY" ds)

let test_verify_index_in_size () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let e =
    Loop { size = Var idx +! int_ 1; idx; gens = [ Collect { cond = None; value = int_ 0 } ] }
  in
  check tbool "index escapes into size" true
    (errors_with "V-LOOP-INDEX-IN-SIZE" (Verify.run e))

let test_verify_acc_shared () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh ~name:"a" Types.Float in
  let e =
    Loop
      { size = int_ 4;
        idx;
        gens =
          [ Reduce
              { cond = None;
                value = float_ 1.0;
                a;
                b = a;
                rfun = Var a +. Var a;
                init = float_ 0.0;
              };
          ];
      }
  in
  check tbool "shared accumulators" true (errors_with "V-ACC-SHARED" (Verify.run e))

let test_verify_effectful_component () =
  (* an effectful f inside a multiloop component is unsafe to parallelize *)
  let e = fsum ~size:(int_ 4) (fun i -> eff [ i ]) in
  check tbool "effectful value" true
    (errors_with "V-EFFECT-COMPONENT" (Verify.run e));
  (* the same extern whitelisted is accepted *)
  let ok =
    fsum ~size:(int_ 4) (fun i ->
        Extern { ename = "log_row"; eargs = [ i ]; ety = Types.Float; whitelisted = true })
  in
  check tbool "whitelisted extern ok" false
    (errors_with "V-EFFECT-COMPONENT" (Verify.run ok))

let test_verify_effectful_size () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let e =
    Loop
      { size = eff ~ename:"next_batch_size" ~ety:Types.Int [];
        idx;
        gens = [ Collect { cond = None; value = int_ 0 } ];
      }
  in
  check tbool "effectful size" true (errors_with "V-EFFECT-SIZE" (Verify.run e))

let test_verify_nonassoc_reduce () =
  (* r = (-.) is recognized and rejected: chunked evaluation diverges *)
  let e =
    reduce ~size:(int_ 8) ~ty:Types.Float ~init:(float_ 0.0)
      (fun _ -> float_ 1.0)
      (fun a b -> a -. b)
  in
  check tbool "subtraction reducer" true
    (errors_with "V-REDUCE-NONASSOC" (Verify.run e))

let test_verify_reduce_uses_index () =
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh ~name:"a" Types.Float and b = Sym.fresh ~name:"b" Types.Float in
  let e =
    Loop
      { size = int_ 8;
        idx;
        gens =
          [ Reduce
              { cond = None;
                value = float_ 1.0;
                a;
                b;
                rfun = if_ (Var idx =! int_ 0) (Var a) (Var b);
                init = float_ 0.0;
              };
          ];
      }
  in
  check tbool "index-dependent reducer" true
    (errors_with "V-REDUCE-IDX" (Verify.run e))

let test_verify_unknown_reduce () =
  (* ignores one accumulator: not a reduction we can vouch for — warning *)
  let e =
    reduce ~size:(int_ 8) ~ty:Types.Float ~init:(float_ 0.0)
      (fun _ -> float_ 1.0)
      (fun a _ -> a *. a)
  in
  let ds = Verify.run e in
  check tbool "unknown shape warned" true (has_rule ds "V-REDUCE-UNKNOWN");
  check tbool "unknown shape is not an error" false (Diag.has_errors ds)

let test_verify_float_and_init_warnings () =
  let ds = Verify.run (fsum ~size:(int_ 4) (fun _ -> float_ 1.0)) in
  check tbool "float reassociation warned" true (has_rule ds "V-REDUCE-FLOAT");
  check tbool "identity init accepted" false (has_rule ds "V-REDUCE-INIT");
  let bad_init =
    reduce ~size:(int_ 4) ~ty:Types.Float ~init:(float_ 1.0)
      (fun _ -> float_ 1.0)
      (fun a b -> a +. b)
  in
  check tbool "non-identity init warned" true
    (has_rule (Verify.run bad_init) "V-REDUCE-INIT")

let test_verify_race () =
  (* the loop reads xs while an effectful extern takes xs as an argument:
     a cross-iteration read/write race *)
  let e =
    collect ~size:(Len xs) (fun i ->
        read xs i +. eff ~ename:"scatter_update" [ xs; i ])
  in
  let ds = Verify.run e in
  check tbool "read/write race" true (errors_with "V-RACE-READ-WRITE" ds)

let test_verify_argmin_recognized () =
  (* the k-means/kNN argmin encoding is an associative min-by selection *)
  let e = min_index ~size:(Len xs) (fun i -> read xs i) in
  let ds = Verify.run e in
  check tbool "argmin not flagged unknown" false (has_rule ds "V-REDUCE-UNKNOWN");
  check tbool "argmin has no errors" false (Diag.has_errors ds)

let test_verify_vectorized_reduce_recognized () =
  (* the elementwise-lifted reduce produced by Column-to-Row *)
  let idx = Sym.fresh ~name:"i" Types.Int in
  let a = Sym.fresh ~name:"a" (Types.Arr Types.Float) in
  let b = Sym.fresh ~name:"b" (Types.Arr Types.Float) in
  let e =
    Loop
      { size = Len xs;
        idx;
        gens =
          [ Reduce
              { cond = None;
                value = map_arr xs (fun v -> v);
                a;
                b;
                rfun = vec_fadd (Var a) (Var b);
                init = zero_vec (int_ 4);
              };
          ];
      }
  in
  let ds = Verify.run e in
  check tbool "vector reduce not flagged unknown" false (has_rule ds "V-REDUCE-UNKNOWN");
  check tbool "vector reduce has no errors" false (Diag.has_errors ds)

let test_verify_rule_catalogue () =
  (* every diagnostic the verifier can emit carries a catalogued rule id *)
  check tbool "catalogue is non-empty" true (List.length Verify.rule_ids >= 13);
  List.iter
    (fun (id, _, descr) ->
      check tbool (id ^ " has a description") true (String.length descr > 0))
    Verify.rules

(* ---------------- verifier: the benchmark apps stay clean ----------- *)

let all_apps : (string * (unit -> exp)) list =
  [ ("kmeans", fun () -> Dmll_apps.Kmeans.program ~rows:1000 ~cols:16 ~k:8 ());
    ("logreg", fun () -> Dmll_apps.Logreg.program ~rows:1000 ~cols:16 ~alpha:0.01 ());
    ("gda", fun () -> Dmll_apps.Gda.program ~rows:1000 ~cols:8 ());
    ("tpch_q1", fun () -> Dmll_apps.Tpch_q1.program ());
    ("gene", fun () -> Dmll_apps.Gene.program ());
    ("pagerank_pull", fun () -> Dmll_apps.Pagerank.program_pull ~nv:1024 ());
    ("pagerank_push", fun () -> Dmll_apps.Pagerank.program_push ~nv:1024 ());
    ("tricount", fun () -> Dmll_apps.Tricount.program ());
    ("knn", fun () -> Dmll_apps.Knn.program ~train_rows:1000 ~test_rows:100 ~cols:8 ());
    ("naive_bayes", fun () -> Dmll_apps.Naive_bayes.program ~rows:1000 ~cols:8 ());
    ("gibbs", fun () -> Dmll_apps.Gibbs.program ~nvars:1000 ~replicas:4 ());
    ("ridge", fun () -> Dmll_apps.Ridge.program ~rows:1000 ~cols:16 ~alpha:0.001 ~lambda:0.1 ());
  ]

let test_apps_lint_clean () =
  List.iter
    (fun (name, build) ->
      let c = Dmll.compile_with Dmll.Config.default (build ()) in
      let ds = Dmll.lint c in
      check tbool (name ^ ": no lint errors after full optimization") false
        (Diag.has_errors ds))
    all_apps

let test_apps_debug_verified () =
  (* debug mode re-verifies after every rule application and stage; it must
     accept the whole pipeline on every app *)
  List.iter
    (fun (name, build) ->
      match Dmll.compile_with Dmll.Config.(default |> with_debug true) (build ()) with
      | (_ : Dmll.compiled) -> ()
      | exception Diag.Failed { stage; diags } ->
          Alcotest.failf "%s: debug verification failed at %s: %s" name stage
            (String.concat "; " (List.map Diag.to_string diags)))
    all_apps;
  (* and across the GPU lowering too *)
  match
    Dmll.compile_with
      Dmll.Config.(
        default |> with_debug true
        |> with_target
             (Dmll.Gpu
                { Dmll_runtime.Sim_gpu.transpose = true; row_to_column = true }))
      (Dmll_apps.Kmeans.program ~rows:200 ~cols:8 ~k:4 ())
  with
  | (_ : Dmll.compiled) -> ()
  | exception Diag.Failed { stage; diags } ->
      Alcotest.failf "kmeans/gpu: debug verification failed at %s: %s" stage
        (String.concat "; " (List.map Diag.to_string diags))

(* ---------------- partition warnings as diagnostics ----------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_partition_diag_remote () =
  (* the Figure-3 fallback case: a gather no rewrite can fix *)
  let perm = Input ("perm", Types.Arr Types.Int, Local) in
  let r = Partition.analyze (collect ~size:(Len xs) (fun i -> read xs (Read (perm, i)))) in
  let ds = Partition.diags r in
  check tbool "P-REMOTE-ACCESS fires" true (has_rule ds "P-REMOTE-ACCESS");
  check tbool "remote diags are warnings" false (Diag.has_errors ds);
  check tbool "message text preserved" true
    (List.exists
       (fun w -> contains (Partition.warning_to_string w) "runtime data movement")
       r.Partition.warnings)

let test_partition_diag_sequential () =
  let r = Partition.analyze ~transforms:[] (Read (xs, int_ 0)) in
  let ds = Partition.diags r in
  check tbool "P-SEQ-ON-PARTITIONED fires" true (has_rule ds "P-SEQ-ON-PARTITIONED");
  check tbool "sequential diags are warnings" false (Diag.has_errors ds);
  (* the fixed case draws neither rule *)
  let r2 = Partition.analyze (mini_kmeans ~k:3) in
  check tbool "conditional-reduce case is clean" true (Partition.diags r2 = [])

(* ---------------- verifier properties over random programs ---------- *)

let clean e =
  (match Typecheck.check_closed e with Ok _ -> true | Error _ -> false)
  && not (Diag.has_errors (Verify.run e))

let fixpoint_with rules e =
  let trace = Dmll_opt.Rewrite.new_trace () in
  Dmll_opt.Rewrite.fixpoint rules trace e

(* every optimizer pass preserves both well-typedness and a clean verifier
   report on random well-typed programs *)
let prop_pass_clean ?(count = 100) (pname, transform) =
  QCheck.Test.make ~count ~name:(pname ^ " preserves typing + verifier cleanliness")
    Dmll_testgen.Gen_ir.arbitrary_program (fun e ->
      clean e && clean (transform e))

let pass_props =
  List.map (fun p -> prop_pass_clean p)
    [ ("simplify", fixpoint_with Dmll_opt.Simplify.rules);
      ("cse", fixpoint_with Dmll_opt.Cse.rules);
      ("fusion", fixpoint_with Dmll_opt.Fusion.rules);
      ("motion", fixpoint_with Dmll_opt.Motion.rules);
      ("soa", fixpoint_with Dmll_opt.Soa.rules);
      ("pipeline", fun e -> (Dmll_opt.Pipeline.optimize e).Dmll_opt.Pipeline.program);
    ]
  @ [ prop_pass_clean ~count:50
        ( "driver (debug mode)",
          fun e ->
            (Dmll.compile_with Dmll.Config.(default |> with_debug true) e)
              .Dmll.final );
    ]

let () =
  Alcotest.run "analysis"
    [ ("linear", [ Alcotest.test_case "affine forms" `Quick test_linear_forms ]);
      ( "stencil",
        [ Alcotest.test_case "interval" `Quick test_stencil_interval;
          Alcotest.test_case "const" `Quick test_stencil_const;
          Alcotest.test_case "all" `Quick test_stencil_all;
          Alcotest.test_case "unknown" `Quick test_stencil_unknown;
          Alcotest.test_case "row" `Quick test_stencil_row;
          Alcotest.test_case "column" `Quick test_stencil_column;
          Alcotest.test_case "shifted interval" `Quick test_stencil_shifted;
          Alcotest.test_case "golden classification table" `Quick
            test_stencil_golden_table;
          Alcotest.test_case "join lattice" `Quick test_stencil_join;
          Alcotest.test_case "global join" `Quick test_global_join;
        ] );
      ( "partition",
        [ Alcotest.test_case "seeds" `Quick test_partition_seeds;
          Alcotest.test_case "propagation" `Quick test_partition_propagates;
          Alcotest.test_case "triggers conditional-reduce" `Quick
            test_partition_triggers_conditional_reduce;
          Alcotest.test_case "fallback warning" `Quick test_partition_fallback_warning;
          Alcotest.test_case "sequential warning" `Quick test_partition_sequential_warning;
          Alcotest.test_case "co-partitioning" `Quick test_co_partitioning;
          Alcotest.test_case "co-partitioning dedup" `Quick test_co_partitioning_dedup;
        ] );
      ( "comm",
        [ Alcotest.test_case "decisions recorded" `Quick
            test_partition_decisions_recorded;
          Alcotest.test_case "cost-guided keep on tiny data" `Quick
            test_partition_cost_guided_keep;
          Alcotest.test_case "fusion tie-break" `Quick test_fusion_comm_tiebreak;
          QCheck_alcotest.to_alcotest prop_stencil_bytes_monotone;
        ] );
      ( "cost",
        [ Alcotest.test_case "basics" `Quick test_cost_basics;
          Alcotest.test_case "scaling" `Quick test_cost_scaling;
          Alcotest.test_case "size evaluator" `Quick test_size_evaluator;
        ] );
      ( "verify",
        [ Alcotest.test_case "clean program" `Quick test_verify_clean_program;
          Alcotest.test_case "unbound symbol" `Quick test_verify_unbound;
          Alcotest.test_case "rebound symbol" `Quick test_verify_rebound;
          Alcotest.test_case "empty loop" `Quick test_verify_empty_loop;
          Alcotest.test_case "index in size" `Quick test_verify_index_in_size;
          Alcotest.test_case "shared accumulators" `Quick test_verify_acc_shared;
          Alcotest.test_case "effectful component" `Quick test_verify_effectful_component;
          Alcotest.test_case "effectful size" `Quick test_verify_effectful_size;
          Alcotest.test_case "non-associative reduce" `Quick test_verify_nonassoc_reduce;
          Alcotest.test_case "reduce uses index" `Quick test_verify_reduce_uses_index;
          Alcotest.test_case "unknown reduce shape" `Quick test_verify_unknown_reduce;
          Alcotest.test_case "float + init warnings" `Quick
            test_verify_float_and_init_warnings;
          Alcotest.test_case "read/write race" `Quick test_verify_race;
          Alcotest.test_case "argmin recognized" `Quick test_verify_argmin_recognized;
          Alcotest.test_case "vectorized reduce recognized" `Quick
            test_verify_vectorized_reduce_recognized;
          Alcotest.test_case "rule catalogue" `Quick test_verify_rule_catalogue;
        ] );
      ( "verify-apps",
        [ Alcotest.test_case "lint clean" `Quick test_apps_lint_clean;
          Alcotest.test_case "debug-mode pipeline verified" `Quick
            test_apps_debug_verified;
        ] );
      ( "partition-diag",
        [ Alcotest.test_case "remote access" `Quick test_partition_diag_remote;
          Alcotest.test_case "sequential access" `Quick test_partition_diag_sequential;
        ] );
      ("verify-props", List.map (fun p -> QCheck_alcotest.to_alcotest p) pass_props);
    ]

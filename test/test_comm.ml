(* Tests of the static communication-volume analysis against the cluster
   simulator (DESIGN.md §10): with validation armed — as under
   DMLL_DEBUG=1 — every application must satisfy the contract
   measured <= slack * predicted + floor for every loop and phase, at
   several cluster sizes, and the measured byte counters themselves must
   behave (remote reads charge exactly the bytes they move). *)

open Dmll_ir
open Exp
module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Comm = Dmll_analysis.Comm
module Partition = Dmll_analysis.Partition
module Diag = Dmll_analysis.Diag

let check = Alcotest.check
let tbool = Alcotest.bool

(* ---------------- shared small inputs, one entry per app ------------- *)

let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 ()
let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data
let lr_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:5 ~classes:2 ()
let q1_table = Dmll_data.Tpch.generate ~rows:500 ()
let gene_reads = Dmll_data.Genes.generate ~reads:500 ~barcodes:20 ()

let pr_graph =
  Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:6 ~edge_factor:4 ())

let tri_graph =
  Dmll_graph.Csr.of_edges
    (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:5 ~edge_factor:4 ()))

let knn_train = Dmll_data.Gaussian.generate ~seed:1 ~rows:40 ~cols:4 ~classes:3 ()
let knn_test = Dmll_data.Gaussian.generate ~seed:2 ~rows:12 ~cols:4 ~classes:3 ()
let nb_data = Dmll_data.Gaussian.generate ~rows:50 ~cols:4 ~classes:3 ()
let gibbs_graph = Dmll_data.Factor_graph.generate ~vars:50 ~factors:150 ()
let gibbs_state = Dmll_data.Factor_graph.initial_state gibbs_graph
let gibbs_rand = Dmll_data.Factor_graph.sweep_randoms ~sweeps:2 gibbs_graph

let apps : (string * exp * (string * V.t) list) list =
  let open Dmll_apps in
  [ ( "kmeans",
      Kmeans.program ~rows:60 ~cols:6 ~k:3 (),
      Kmeans.inputs km_data ~centroids:km_centroids );
    ( "logreg",
      Logreg.program ~rows:50 ~cols:5 ~alpha:0.01 (),
      Logreg.inputs lr_data ~theta:(Array.make 5 0.1) );
    ("gda", Gda.program ~rows:50 ~cols:5 (), Gda.inputs lr_data);
    ( "tpch_q1",
      Tpch_q1.program (),
      Tpch_q1.aos_inputs q1_table @ Tpch_q1.soa_inputs q1_table );
    ( "gene",
      Gene.program (),
      Gene.aos_inputs gene_reads @ Gene.soa_inputs gene_reads );
    ( "pagerank_pull",
      Pagerank.program_pull ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ( "pagerank_push",
      Pagerank.program_push ~nv:pr_graph.Dmll_graph.Csr.nv (),
      Pagerank.inputs pr_graph ~ranks:(Pagerank.initial_ranks pr_graph) );
    ("tricount", Tricount.program (), Tricount.inputs tri_graph);
    ( "knn",
      Knn.program ~train_rows:40 ~test_rows:12 ~cols:4 (),
      Knn.inputs ~train:knn_train ~test:knn_test );
    ( "naive_bayes",
      Naive_bayes.program ~rows:50 ~cols:4 (),
      Naive_bayes.inputs nb_data );
    ( "gibbs",
      Gibbs.program ~nvars:50 ~replicas:2 (),
      Gibbs.inputs gibbs_graph ~state:gibbs_state ~rand:gibbs_rand );
    ( "ridge",
      Ridge.program ~rows:50 ~cols:5 ~alpha:0.001 ~lambda:0.1 (),
      Ridge.inputs lr_data ~theta:(Array.make 5 0.2) );
  ]

let node_counts = [ 2; 5 ]

let config_for n =
  { R.Sim_cluster.default_config with cluster = M.with_nodes n M.ec2_cluster }

let with_validation f =
  let saved = !Comm.validate_enabled in
  Comm.validate_enabled := true;
  Fun.protect ~finally:(fun () -> Comm.validate_enabled := saved) f

(* ---------------- every app upholds the contract --------------------- *)

let test_apps_validated () =
  with_validation (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let c = Dmll.compile_with Dmll.Config.default program in
          let reference =
            (R.Sim_cluster.run ~config:(config_for 1) ~inputs c.Dmll.final)
              .R.Sim_common.value
          in
          List.iter
            (fun n ->
              match R.Sim_cluster.run ~config:(config_for n) ~inputs c.Dmll.final with
              | r ->
                  check tbool
                    (Printf.sprintf "%s@%d nodes: value unchanged" name n)
                    true
                    (V.equal r.R.Sim_common.value reference)
              | exception Diag.Failed { stage; diags } ->
                  Alcotest.failf "%s@%d nodes: comm-plan overrun at %s: %s" name
                    n stage
                    (String.concat "; " (List.map Diag.to_string diags)))
            node_counts)
        apps)

(* ---------------- explicit per-phase bound on one app ---------------- *)

let traffic_total (r : R.Sim_common.result) (phase : string) : float =
  let suffix = "/" ^ phase in
  let slen = String.length suffix in
  List.fold_left
    (fun acc (nm, b) ->
      let nlen = String.length nm in
      if nlen >= slen && String.sub nm (nlen - slen) slen = suffix then acc +. b
      else acc)
    0.0 r.R.Sim_common.traffic

let test_kmeans_phases_bounded () =
  let _, program, inputs = List.find (fun (n, _, _) -> n = "kmeans") apps in
  let c = Dmll.compile_with Dmll.Config.default program in
  let layouts =
    (Partition.analyze ~transforms:[] ~reoptimize:Fun.id c.Dmll.final)
      .Partition.layouts
  in
  let layout_of t = Partition.layout_of t layouts in
  let input_lens =
    List.filter_map
      (fun (n, v) -> match v with V.Varr _ -> Some (n, V.length v) | _ -> None)
      inputs
  in
  let resolver = Comm.static_resolver ~input_lens c.Dmll.final in
  let plans = Comm.of_program ~layout_of c.Dmll.final in
  let n = 4 in
  let r = R.Sim_cluster.run ~config:(config_for n) ~inputs c.Dmll.final in
  check tbool "traffic was recorded" true (r.R.Sim_common.traffic <> []);
  List.iter
    (fun (pname, p) ->
      let predicted =
        List.fold_left
          (fun acc plan -> acc +. Comm.phase_bytes ~nodes:n ~layout_of resolver plan p)
          0.0 plans
      in
      let measured = traffic_total r pname in
      check tbool
        (Printf.sprintf "%s: measured %.0fB within %.2fx of predicted %.0fB"
           pname measured Comm.slack predicted)
        true
        (measured <= (Comm.slack *. predicted) +. Comm.slack_floor_bytes))
    [ ("broadcast", `Broadcast); ("replicate", `Replicate); ("gather", `Gather) ]

(* ---------------- the contract itself -------------------------------- *)

let test_contract_trips_on_overrun () =
  (* within slack: accepted *)
  Comm.check_measured ~site:"t" ~phase:"replicate" ~predicted:1000.0
    ~measured:1400.0;
  (* zero payload under the floor: accepted *)
  Comm.check_measured ~site:"t" ~phase:"gather" ~predicted:0.0 ~measured:64.0;
  (* beyond slack + floor: C-COMM-OVERRUN *)
  match
    Comm.check_measured ~site:"t" ~phase:"replicate" ~predicted:1000.0
      ~measured:((Comm.slack *. 1000.0) +. Comm.slack_floor_bytes +. 1.0)
  with
  | () -> Alcotest.fail "expected C-COMM-OVERRUN"
  | exception Diag.Failed { diags; _ } ->
      check tbool "rule id is C-COMM-OVERRUN" true
        (Diag.has_rule diags "C-COMM-OVERRUN")

(* ---------------- the measured side: Dist_array byte counter --------- *)

let test_dist_array_counts_bytes () =
  let tfloat = Alcotest.float 1e-9 in
  let dir = R.Dist_array.make_directory ~n:100 ~nodes:4 ~sockets_per_node:1 in
  let t =
    R.Dist_array.scatter dir (V.of_float_array (Array.init 100 float_of_int))
  in
  check tfloat "fresh array moved nothing" 0.0 (R.Dist_array.remote_read_bytes t);
  (* a local read moves nothing *)
  ignore (R.Dist_array.read t ~from_loc:(R.Dist_array.owner dir 0) 0);
  check tfloat "local read is free" 0.0 (R.Dist_array.remote_read_bytes t);
  (* each remote read charges exactly the element's wire size *)
  ignore (R.Dist_array.read t ~from_loc:0 99);
  check tfloat "one remote float" 8.0 (R.Dist_array.remote_read_bytes t);
  ignore (R.Dist_array.read t ~from_loc:0 98);
  check tfloat "two remote floats" 16.0 (R.Dist_array.remote_read_bytes t)

(* ---------------- counter hygiene between simulator runs ------------- *)

(* PR-5: Dist_array charges remote-read bytes to a per-run
   Obs.Metrics.t handle instead of a process-wide counter, so the
   "total/remote-read" traffic row of one Sim_cluster.run can never see
   another run's bytes — no reset hack required.  Manual Dist_array
   activity between runs lands on its own handle and must not leak. *)
let test_per_run_metrics_isolation () =
  let program =
    let open Builder in
    let input = Input ("xs", Types.Arr Types.Float, Partitioned) in
    let i = Sym.fresh ~name:"i" Types.Int in
    Loop
      { size = Len input;
        idx = i;
        gens =
          [ Collect { cond = None; value = Read (input, Var i) *. float_ 2.0 } ];
      }
  in
  let inputs =
    [ ("xs", V.of_float_array (Array.init 96 float_of_int)) ]
  in
  let run () = R.Sim_cluster.run ~config:(config_for 4) ~inputs program in
  let r1 = run () in
  (* manual remote reads between runs charge their own metrics handle *)
  let side = Dmll_obs.Metrics.create () in
  let dir = R.Dist_array.make_directory ~n:100 ~nodes:4 ~sockets_per_node:1 in
  let t =
    R.Dist_array.scatter dir ~metrics:side
      (V.of_float_array (Array.init 100 float_of_int))
  in
  ignore (R.Dist_array.read t ~from_loc:0 99);
  check tbool "manual read bumped its own handle" true
    (Dmll_obs.Metrics.bytes side "remote_read_bytes" > 0.0);
  let r2 = run () in
  check tbool "value identical across consecutive runs" true
    (V.equal r1.R.Sim_common.value r2.R.Sim_common.value);
  check
    Alcotest.(list (pair string (float 1e-9)))
    "traffic identical across consecutive runs (no inherited bytes)"
    r1.R.Sim_common.traffic r2.R.Sim_common.traffic;
  (* the two runs carry independent ledgers with identical charges *)
  let tfloat = Alcotest.float 1e-9 in
  check tfloat "per-run ledgers agree"
    (Dmll_obs.Metrics.bytes r1.R.Sim_common.metrics "remote_read_bytes")
    (Dmll_obs.Metrics.bytes r2.R.Sim_common.metrics "remote_read_bytes")

(* ---------------- --explain-comm --json golden schema ----------------- *)

(* The JSON reader lives in test/support/json_check.ml, shared with the
   --explain-mem golden test in test_mem.ml. *)
open Dmll_testgen.Json_check

let parse_json = parse

let tkeys = Alcotest.(list string)

let test_explain_json_schema () =
  (* reproduce dmllc --explain-comm kmeans_tiny --json --nodes 4
     in-process *)
  let machine = M.with_nodes 4 M.ec2_cluster in
  let input_lens = [ ("matrix", 256); ("clusters", 16) ] in
  let source = Dmll_apps.Kmeans.program ~rows:64 ~cols:4 ~k:4 () in
  let generic =
    (Dmll_opt.Pipeline.optimize_with ~extra_rules:[] source)
      .Dmll_opt.Pipeline.program
  in
  let report =
    Partition.analyze ~transforms:Dmll_opt.Rules_nested.cpu_rules ~machine
      ~input_lens generic
  in
  let layout_of t = Partition.layout_of t report.Partition.layouts in
  let summary =
    Comm.summarize ~input_lens ~machine ~layout_of report.Partition.program
  in
  let json =
    Partition.explain_to_json ~app:"kmeans_tiny"
      ~decisions:report.Partition.decisions summary
  in
  let doc = parse_json json in
  (* top level: exactly app/decisions/comm, in that order *)
  check tkeys "top-level keys" [ "app"; "decisions"; "comm" ] (keys_of doc);
  check Alcotest.string "app name" "kmeans_tiny" (str (field doc "app"));
  (* decisions: the kmeans_tiny sizes are chosen so the cost-guided search
     keeps the program over the conditional-reduce rewrite *)
  (match arr (field doc "decisions") with
  | [ d ] ->
      check tkeys "decision keys"
        [ "iteration"; "chosen"; "provenance"; "candidates" ]
        (keys_of d);
      check Alcotest.string "provenance" "greedy" (str (field d "provenance"));
      check Alcotest.string "chosen rule" "keep" (str (field d "chosen"));
      List.iter
        (fun c ->
          check tkeys "candidate keys" [ "rule"; "bytes" ] (keys_of c);
          ignore (num (field c "bytes")))
        (arr (field d "candidates"))
  | ds -> Alcotest.failf "expected exactly one decision, got %d" (List.length ds));
  (* comm summary *)
  let comm = field doc "comm" in
  check tkeys "comm keys"
    [ "nodes"; "loops"; "per_collection"; "partials_bytes"; "total_bytes";
      "est_seconds" ]
    (keys_of comm);
  check (Alcotest.float 0.0) "nodes" 4.0 (num (field comm "nodes"));
  let loops = arr (field comm "loops") in
  check tbool "kmeans_tiny has two outer loops" true (List.length loops = 2);
  List.iter
    (fun l ->
      check tkeys "loop keys" [ "loop"; "distributed"; "terms" ] (keys_of l);
      (match field l "distributed" with
      | Jbool _ -> ()
      | _ -> Alcotest.fail "distributed must be a bool");
      List.iter
        (fun t ->
          check tkeys "term keys"
            [ "kind"; "target"; "formula"; "bytes"; "note" ]
            (keys_of t);
          check tbool "term kind is known" true
            (List.mem (str (field t "kind"))
               [ "broadcast"; "gather"; "shuffle"; "remote-read"; "halo" ]);
          ignore (num (field t "bytes")))
        (arr (field l "terms")))
    loops;
  List.iter
    (fun pc ->
      check tkeys "per_collection keys" [ "collection"; "bytes" ] (keys_of pc))
    (arr (field comm "per_collection"));
  (* sym-independent pinned values: total volume and the matrix/clusters
     broadcast bytes are functions of the app sizes only *)
  check (Alcotest.float 0.0) "partials_bytes" 0.0
    (num (field comm "partials_bytes"));
  check (Alcotest.float 0.0) "total_bytes" 2688.0
    (num (field comm "total_bytes"));
  let coll_bytes name =
    List.fold_left
      (fun acc pc ->
        if str (field pc "collection") = name then num (field pc "bytes")
        else acc)
      Float.nan
      (arr (field comm "per_collection"))
  in
  check (Alcotest.float 0.0) "matrix broadcast bytes" 2048.0
    (coll_bytes "matrix");
  check (Alcotest.float 0.0) "clusters broadcast bytes" 128.0
    (coll_bytes "clusters")

let () =
  Alcotest.run "comm"
    [ ( "contract",
        [ Alcotest.test_case "slack and overrun" `Quick test_contract_trips_on_overrun;
          Alcotest.test_case "dist-array byte counter" `Quick
            test_dist_array_counts_bytes;
        ] );
      ( "cluster",
        [ Alcotest.test_case "kmeans per-phase bound" `Quick
            test_kmeans_phases_bounded;
          Alcotest.test_case "per-run metrics isolation" `Quick
            test_per_run_metrics_isolation;
          Alcotest.test_case "all apps validated at 2 and 5 nodes" `Slow
            test_apps_validated;
        ] );
      ( "explain-json",
        [ Alcotest.test_case "golden schema for kmeans_tiny" `Quick
            test_explain_json_schema;
        ] );
    ]

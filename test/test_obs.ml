(* Tests of the observability layer (DESIGN.md §12): the golden Chrome
   trace_event schema, the span-tree/simulated-clock invariants of the
   cluster runtime (property-tested), and the deprecation contract of
   the pre-Config compile entry points. *)

module V = Dmll_interp.Value
module R = Dmll_runtime
module Obs = Dmll_obs
module Span = Dmll_obs.Span
module Trace_json = Dmll_obs.Trace_json
module M = Dmll_machine.Machine
module Config = Dmll.Config

let check = Alcotest.check
let tbool = Alcotest.bool

(* a partitioned map-style loop: enough to exercise broadcast, remote
   reads, and the per-loop phase breakdown of the cluster simulator *)
let program ~n () =
  let open Dmll_ir.Exp in
  let open Dmll_ir.Builder in
  let input = Input ("xs", Dmll_ir.Types.Arr Dmll_ir.Types.Float, Partitioned) in
  let i = Dmll_ir.Sym.fresh ~name:"i" Dmll_ir.Types.Int in
  ignore n;
  Loop
    { size = Len input;
      idx = i;
      gens =
        [ Collect { cond = None; value = Read (input, Var i) *. float_ 2.0 } ];
    }

let inputs ~n = [ ("xs", V.of_float_array (Array.init n float_of_int)) ]

let cluster_config ?obs ?metrics nodes =
  { R.Sim_cluster.default_config with
    cluster = M.with_nodes nodes M.ec2_cluster;
    obs;
    metrics;
  }

(* ---------------- golden Chrome trace_event schema ------------------- *)

(* Pin the exact shape downstream viewers (chrome://tracing, Perfetto)
   and dmll_trace_check rely on: top-level keys, metadata events, and the
   key set of every complete event. *)
let km_data = Dmll_data.Gaussian.generate ~rows:60 ~cols:6 ~classes:3 ()
let km_centroids = Dmll_data.Gaussian.random_centroids ~k:3 km_data

let test_chrome_schema () =
  let cfg =
    Config.armed
      { Config.default with
        Config.target = Dmll.Cluster (cluster_config 4);
        trace_file = Some "unused";
      }
  in
  (* k-means: fires the Figure-3 rewrites, so rule spans appear *)
  let c =
    Dmll.compile_with cfg (Dmll_apps.Kmeans.program ~rows:60 ~cols:6 ~k:3 ())
  in
  ignore
    (Dmll.execute cfg c
       ~inputs:(Dmll_apps.Kmeans.inputs km_data ~centroids:km_centroids));
  let tracer = Option.get cfg.Config.tracer in
  let text = Span.to_chrome_json tracer in
  (match Trace_json.validate_chrome text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trace fails Chrome schema: %s" msg);
  let j = Trace_json.parse_exn text in
  check
    Alcotest.(list string)
    "top-level keys"
    [ "displayTimeUnit"; "traceEvents" ]
    (Trace_json.keys j);
  let events =
    match Trace_json.member "traceEvents" j with
    | Some (Trace_json.Arr es) -> es
    | _ -> Alcotest.fail "traceEvents missing"
  in
  check tbool "has events" true (List.length events > 3);
  let ph e =
    match Trace_json.member "ph" e with
    | Some (Trace_json.Str s) -> s
    | _ -> Alcotest.fail "event without ph"
  in
  let metadata, complete = List.partition (fun e -> ph e = "M") events in
  check tbool "process_name + two thread_name metadata events" true
    (List.length metadata = 3);
  check tbool "everything else is a complete event" true
    (List.for_all (fun e -> ph e = "X") complete);
  List.iter
    (fun e ->
      check
        Alcotest.(list string)
        "complete-event keys"
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ]
        (Trace_json.keys e))
    complete;
  let cats =
    List.filter_map
      (fun e ->
        match Trace_json.member "cat" e with
        | Some (Trace_json.Str s) -> Some s
        | _ -> None)
      complete
  in
  List.iter
    (fun want ->
      check tbool (Printf.sprintf "cat %S present" want) true
        (List.mem want cats))
    [ "compile"; "pipeline"; "rule"; "partition"; "runtime"; "phase" ]

(* every optimizer rule firing the report names shows up as a rule span *)
let test_rule_spans () =
  let cfg =
    Config.armed { Config.default with Config.trace_file = Some "unused" }
  in
  let c =
    Dmll.compile_with cfg (Dmll_apps.Kmeans.program ~rows:60 ~cols:6 ~k:3 ())
  in
  check tbool "kmeans fires optimizations" true (Dmll.optimizations c <> []);
  let tracer = Option.get cfg.Config.tracer in
  let rule_spans =
    List.filter_map
      (fun (s : Span.span) ->
        if s.Span.cat = "rule" then Some s.Span.name else None)
      (Span.spans tracer)
  in
  List.iter
    (fun opt ->
      check tbool
        (Printf.sprintf "optimization %S has a rule span" opt)
        true (List.mem opt rule_spans))
    (Dmll.optimizations c)

(* ---------------- span-tree / simulated-clock properties ------------- *)

(* For arbitrary (size, nodes): the trace is well-nested per timeline,
   and the runtime spans tile the simulated clock — the sum of top-level
   runtime duractions (loops plus checkpoint phases) equals the reported
   modeled seconds, and each loop's phase children tile the loop span. *)
let prop_spans_tile_clock =
  QCheck.Test.make ~count:30 ~name:"runtime spans tile the simulated clock"
    QCheck.(pair (int_range 16 256) (int_range 2 8))
    (fun (n, nodes) ->
      let tracer = Span.create () in
      let r =
        R.Sim_cluster.run
          ~config:(cluster_config ~obs:tracer nodes)
          ~inputs:(inputs ~n) (program ~n ())
      in
      if not (Span.well_nested tracer) then
        QCheck.Test.fail_report "span tree is not well-nested";
      let runtime_spans =
        List.filter
          (fun (s : Span.span) -> s.Span.tid = Span.runtime_tid)
          (Span.spans tracer)
      in
      if runtime_spans = [] then
        QCheck.Test.fail_report "no runtime spans recorded";
      (* top-level runtime time: loop spans + checkpoint phases (none
         here), i.e. everything not nested under a loop span *)
      let top_us =
        List.fold_left
          (fun acc (s : Span.span) ->
            if s.Span.cat = "runtime" then acc +. s.Span.dur_us else acc)
          0.0 runtime_spans
      in
      let clock_us = r.R.Sim_common.seconds *. 1e6 in
      if Float.abs (top_us -. clock_us) > 1e-6 +. (1e-9 *. clock_us) then
        QCheck.Test.fail_reportf
          "runtime spans sum to %.3fus but the clock reports %.3fus" top_us
          clock_us;
      (* each loop's phase children tile the loop span exactly *)
      List.iter
        (fun (loop : Span.span) ->
          if loop.Span.cat = "runtime" then begin
            let child_us =
              List.fold_left
                (fun acc (s : Span.span) ->
                  if
                    s.Span.cat = "phase"
                    && s.Span.ts_us >= loop.Span.ts_us -. 1e-6
                    && s.Span.ts_us +. s.Span.dur_us
                       <= loop.Span.ts_us +. loop.Span.dur_us +. 1e-6
                  then acc +. s.Span.dur_us
                  else acc)
                0.0 runtime_spans
            in
            if Float.abs (child_us -. loop.Span.dur_us) > 1e-6 then
              QCheck.Test.fail_reportf
                "loop %s: phases sum to %.3fus, loop span is %.3fus"
                loop.Span.name child_us loop.Span.dur_us
          end)
        runtime_spans;
      true)

(* O-SPAN-CLOCK holds on a healthy run with validation armed: the run
   completes without tripping the contract. *)
let test_span_clock_contract_clean () =
  let saved = !Dmll_analysis.Comm.validate_enabled in
  Dmll_analysis.Comm.validate_enabled := true;
  Fun.protect
    ~finally:(fun () -> Dmll_analysis.Comm.validate_enabled := saved)
    (fun () ->
      let tracer = Span.create () in
      match
        R.Sim_cluster.run
          ~config:(cluster_config ~obs:tracer 4)
          ~inputs:(inputs ~n:128) (program ~n:128 ())
      with
      | _ -> ()
      | exception Dmll_analysis.Diag.Failed { stage; _ } ->
          Alcotest.failf "O-SPAN-CLOCK tripped on a healthy run at %s" stage)

(* ---------------- compile determinism -------------------------------- *)

(* Two compile_with calls on the identical source under the identical
   config must produce bit-for-bit the same compilation (the kernel
   cache's content addressing builds on this), and execute must agree
   with itself across the pair. *)
let test_compile_deterministic () =
  let targets =
    [ Dmll.Sequential;
      Dmll.Gpu { R.Sim_gpu.transpose = true; row_to_column = true };
      Dmll.Cluster (cluster_config 4);
    ]
  in
  (* one source expression: gensym numbering is part of the printed IR,
     so both compiles must see the identical input *)
  let source = program ~n:64 () in
  List.iter
    (fun target ->
      let cfg = { Config.default with Config.target } in
      let c1 = Dmll.compile_with cfg source in
      let c2 = Dmll.compile_with cfg source in
      check Alcotest.string "final IR identical"
        (Dmll_ir.Pp.to_string c1.Dmll.final)
        (Dmll_ir.Pp.to_string c2.Dmll.final);
      check
        Alcotest.(list string)
        "optimization list identical"
        (Dmll.optimizations c1) (Dmll.optimizations c2);
      let r1 = Dmll.execute Config.default c1 ~inputs:(inputs ~n:64) in
      let r2 = Dmll.execute Config.default c2 ~inputs:(inputs ~n:64) in
      check tbool "execute values agree" true (V.equal r1.Dmll.value r2.Dmll.value))
    targets

(* per-run metrics: execute hands back an isolated ledger per call *)
let test_execute_metrics_isolated () =
  let cfg =
    Config.with_target (Dmll.Cluster (cluster_config 4)) Config.default
  in
  let c = Dmll.compile_with cfg (program ~n:64 ()) in
  let r1 = Dmll.execute cfg c ~inputs:(inputs ~n:64) in
  let r2 = Dmll.execute cfg c ~inputs:(inputs ~n:64) in
  check tbool "separate handles" true (r1.Dmll.metrics != r2.Dmll.metrics);
  check (Alcotest.float 1e-9) "identical remote-read charges"
    (Obs.Metrics.bytes r1.Dmll.metrics "remote_read_bytes")
    (Obs.Metrics.bytes r2.Dmll.metrics "remote_read_bytes");
  check Alcotest.int "loops counted"
    (Obs.Metrics.count r1.Dmll.metrics "loops")
    (Obs.Metrics.count r2.Dmll.metrics "loops")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "chrome-trace",
        [ Alcotest.test_case "golden schema" `Quick test_chrome_schema;
          Alcotest.test_case "rule spans cover the report" `Quick
            test_rule_spans;
        ] );
      ( "clock",
        [ qt prop_spans_tile_clock;
          Alcotest.test_case "O-SPAN-CLOCK clean on healthy run" `Quick
            test_span_clock_contract_clean;
        ] );
      ( "config-api",
        [ Alcotest.test_case "compile deterministic" `Quick
            test_compile_deterministic;
          Alcotest.test_case "execute metrics isolated per run" `Quick
            test_execute_metrics_isolated;
        ] );
    ]

(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md §4 for the experiment index
   and EXPERIMENTS.md for paper-vs-measured numbers).

   Default: run everything.  Select subsets with positional arguments:

     dune exec bench/main.exe                      # all experiments
     dune exec bench/main.exe -- table2 fig6       # a subset
     dune exec bench/main.exe -- --bechamel        # micro-benchmarks too
*)

let experiments : (string * string * (unit -> unit)) list =
  [ ("table1", "feature matrix (qualitative)", fun () -> Table1.run ());
    ("table2", "sequential DMLL vs hand-optimized (real)", fun () -> ignore (Table2.run ()));
    ("fig6", "nested pattern transformation impact (GPU+CPU models)",
      fun () -> ignore (Fig6.run ()));
    ("fig7", "NUMA scalability vs Delite/Spark/PowerGraph (model)",
      fun () -> ignore (Fig7.run ()));
    ("fig8", "cluster / GPU cluster / graphs / Gibbs (model + real)",
      fun () -> ignore (Fig8.run ()));
    ("ablation", "per-optimization-group impact (native backend, real time)",
      fun () -> Ablation.run ());
    ("fault_sweep", "recovery overhead vs fault rate (cluster model, JSON)",
      fun () -> Fault_sweep.run ());
    ("comm_validate", "static comm plans vs measured cluster traffic (JSON)",
      fun () -> Comm_validate.run ());
    ("mem_validate", "static footprint peaks vs measured cluster residents (JSON)",
      fun () -> Mem_validate.run ());
    ("proc_validate", "simulated vs real forked-worker wall-clock (JSON)",
      fun () -> Proc_validate.run ());
    ("net_validate", "TCP-executor recovery overhead vs network-fault rate (JSON)",
      fun () -> Net_validate.run ());
    ("plan_validate", "ILP vs greedy plan selection, predicted and measured (JSON)",
      fun () -> Plan_validate.run ());
    ("jit_validate", "kernel cache cold vs warm on the native backend (JSON)",
      fun () -> Jit_validate.run ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let bechamel = List.mem "--bechamel" args in
  let selected = List.filter (fun a -> a <> "--bechamel") args in
  let to_run =
    if selected = [] then experiments
    else
      List.filter (fun (n, _, _) -> List.mem n selected) experiments
  in
  if to_run = [] && not bechamel then begin
    Printf.eprintf "unknown experiment(s); available: %s\n"
      (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
    exit 1
  end;
  Printf.printf
    "DMLL benchmark harness — reproduces the evaluation of\n\
     \"Have Abstraction and Eat Performance, Too\" (CGO 2016).\n\
     Simulated-machine results use the device models in lib/machine\n\
     (see DESIGN.md); Table 2 and the Gibbs indirection factor are real\n\
     wall-clock measurements in this process.\n";
  List.iter
    (fun (name, desc, f) ->
      Printf.printf "\n################ %s — %s\n%!" name desc;
      let (), dt = Dmll_util.Timing.time f in
      Printf.printf "[%s finished in %s]\n%!" name (Dmll_util.Table.fmt_time dt))
    to_run;
  if bechamel then begin
    Printf.printf "\n################ bechamel micro-benchmarks\n%!";
    Bechamel_suite.run ()
  end

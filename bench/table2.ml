(* Table 2: sequential performance of compiled DMLL vs the hand-optimized
   reference, with the optimizations the compiler applied.

   Both sides are REAL wall-clock measurements in this process: DMLL runs
   the fully optimized program through the closure backend (compiled once,
   run [runs] times, median), the reference is the direct OCaml
   implementation in Dmll_apps/Dmll_graph.  The paper's C++ gap was <=25%;
   ours additionally pays one indirect call per IR node (see DESIGN.md §2
   and EXPERIMENTS.md), so the expected gap is larger but the asymptotics
   — one fused traversal, unboxed storage — are the same. *)

module V = Dmll_interp.Value
module T = Dmll_util.Table

type row = {
  name : string;
  dataset : string;
  opts : string list;
  native_s : float option;  (** generated OCaml compiled by ocamlopt *)
  closure_s : float;  (** in-process closure backend *)
  ref_s : float;
  per_iter : bool;
}

let measure = Dmll_util.Timing.measure

let bench_app ~name ~dataset ~per_iter ~(program : Dmll_ir.Exp.exp)
    ~(inputs : (string * V.t) list) ~(reference : unit -> unit) ~runs : row =
  let compiled = Dmll.compile_with Dmll.Config.default program in
  let exe = Dmll_backend.Closure.compile compiled.Dmll.final in
  let reference_value = exe.Dmll_backend.Closure.run ~inputs () in
  let closure_s = measure ~runs (fun () -> exe.Dmll_backend.Closure.run ~inputs ()) in
  (* the native (ocamlopt-compiled) backend, with a correctness gate *)
  let native_s =
    try
      let r = Dmll_backend.Native.run ~runs:(Stdlib.max 3 runs) ~inputs compiled.Dmll.final in
      if V.approx_equal ~eps:1e-6 reference_value r.Dmll_backend.Native.value then
        Some r.Dmll_backend.Native.seconds
      else begin
        Printf.eprintf "table2: native result mismatch for %s\n" name;
        None
      end
    with
    | Dmll_backend.Native.Native_error m ->
        Printf.eprintf "table2: native backend failed for %s: %s\n" name
          (String.sub m 0 (Stdlib.min 200 (String.length m)));
        None
    | Dmll_backend.Codegen_ocaml.Unsupported m ->
        Printf.eprintf "table2: native codegen unsupported for %s: %s\n" name m;
        None
  in
  let ref_s = measure ~runs reference in
  { name; dataset; opts = Dmll.optimizations compiled; native_s; closure_s; ref_s;
    per_iter }

let interesting_opts =
  [ "groupby-reduce"; "conditional-reduce"; "column-to-row"; "row-to-column";
    "pipeline-fusion"; "horizontal-fusion"; "input-soa"; "dead-field-elim";
    "aos-to-soa"; "cse-let-reuse"; "cse-introduce"; "code-motion";
    "dedup-generator"; "struct-unwrap" ]

let opt_summary opts =
  let shown = List.filter (fun o -> List.mem o interesting_opts) opts in
  String.concat ", " shown

let rows ?(runs = 3) () : row list =
  let ml = Lazy.force Datasets.ml_data in
  let cents = Lazy.force Datasets.centroids in
  let q1 = Lazy.force Datasets.q1_table in
  let genes = Lazy.force Datasets.genes in
  let pr = Lazy.force Datasets.pr_graph in
  let tri = Lazy.force Datasets.tri_graph in
  let rows = Datasets.ml_rows and cols = Datasets.ml_cols and k = Datasets.kmeans_k in
  let labels = Dmll_data.Gaussian.binary_labels ml in
  [ bench_app ~name:"TPC-H Query 1" ~runs
      ~dataset:(Printf.sprintf "%dk lineitems" (q1.Dmll_data.Tpch.n / 1000))
      ~per_iter:false
      ~program:(Dmll_apps.Tpch_q1.program ())
      ~inputs:(Dmll_apps.Tpch_q1.soa_inputs q1)
      ~reference:(fun () -> ignore (Dmll_apps.Tpch_q1.handopt q1));
    bench_app ~name:"Gene Barcoding" ~runs
      ~dataset:(Printf.sprintf "%dk reads" (genes.Dmll_data.Genes.n / 1000))
      ~per_iter:false
      ~program:(Dmll_apps.Gene.program ())
      ~inputs:(Dmll_apps.Gene.soa_inputs genes)
      ~reference:(fun () -> ignore (Dmll_apps.Gene.handopt genes));
    bench_app ~name:"GDA" ~runs
      ~dataset:(Printf.sprintf "%dk x %d" (rows / 1000) cols)
      ~per_iter:false
      ~program:(Dmll_apps.Gda.program ~rows ~cols ())
      ~inputs:(Dmll_apps.Gda.inputs ml)
      ~reference:(fun () ->
        ignore
          (Dmll_apps.Gda.handopt ~data:ml.Dmll_data.Gaussian.data ~labels ~rows ~cols ()));
    bench_app ~name:"k-means" ~runs
      ~dataset:(Printf.sprintf "%dk x %d, k=%d" (rows / 1000) cols k)
      ~per_iter:true
      ~program:(Dmll_apps.Kmeans.program ~rows ~cols ~k ())
      ~inputs:(Dmll_apps.Kmeans.inputs ml ~centroids:cents)
      ~reference:(fun () ->
        ignore
          (Dmll_apps.Kmeans.handopt ~data:ml.Dmll_data.Gaussian.data ~rows ~cols ~k
             ~centroids:cents));
    bench_app ~name:"Logistic Regression" ~runs
      ~dataset:(Printf.sprintf "%dk x %d" (rows / 1000) cols)
      ~per_iter:true
      ~program:(Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ())
      ~inputs:(Dmll_apps.Logreg.inputs ml ~theta:Datasets.theta0)
      ~reference:(fun () ->
        ignore
          (Dmll_apps.Logreg.handopt ~data:ml.Dmll_data.Gaussian.data ~labels ~rows ~cols
             ~alpha:0.01 ~theta:Datasets.theta0));
    (let ranks = Dmll_apps.Pagerank.initial_ranks pr in
     let out = Array.make pr.Dmll_graph.Csr.nv 0.0 in
     bench_app ~name:"PageRank" ~runs
       ~dataset:
         (Printf.sprintf "R-MAT %dk v / %dk e" (pr.Dmll_graph.Csr.nv / 1000)
            (pr.Dmll_graph.Csr.ne / 1000))
       ~per_iter:true
       ~program:(Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv ())
       ~inputs:(Dmll_apps.Pagerank.inputs pr ~ranks)
       ~reference:(fun () -> Dmll_apps.Pagerank.handopt_pull pr ranks out));
    bench_app ~name:"Triangle Counting" ~runs
      ~dataset:
        (Printf.sprintf "R-MAT %dk v / %dk e" (tri.Dmll_graph.Csr.nv / 1000)
           (tri.Dmll_graph.Csr.ne / 1000))
      ~per_iter:false
      ~program:(Dmll_apps.Tricount.program ())
      ~inputs:(Dmll_apps.Tricount.inputs tri)
      ~reference:(fun () -> ignore (Dmll_apps.Tricount.handopt tri));
  ]

let run ?(runs = 3) () =
  let tbl =
    T.create
      ~title:
        "Table 2: sequential DMLL (generated code via ocamlopt / closure \
         backend) vs hand-optimized OCaml"
      ~header:
        [ "Benchmark"; "Data set"; "Optimizations applied"; "DMLL native";
          "DMLL closure"; "HandOpt"; "Delta(native)" ]
      ~aligns:[ T.Left; T.Left; T.Left; T.Right; T.Right; T.Right; T.Right ]
      ()
  in
  let rs = rows ~runs () in
  List.iter
    (fun r ->
      let suffix = if r.per_iter then "/iter" else "" in
      T.add_row tbl
        [ r.name; r.dataset; opt_summary r.opts;
          (match r.native_s with
          | Some s -> T.fmt_time s ^ suffix
          | None -> "n/a");
          T.fmt_time r.closure_s ^ suffix;
          T.fmt_time r.ref_s ^ suffix;
          (match r.native_s with
          | Some s -> T.fmt_pct ((s -. r.ref_s) /. r.ref_s *. 100.0)
          | None -> "-");
        ])
    rs;
  T.print tbl;
  rs

(* Throughput and recovery overhead of the TCP executor vs network-fault
   rate (DESIGN.md §16): kmeans, pagerank, and TPC-H Q1 on TCP-attached
   workers at 0%, 1%, and 5% per-frame fault rates (each rate applied
   simultaneously to crash, partition, sever, and corrupt probabilities,
   so "5%" is a genuinely hostile network).

   Every faulted run must be bit-identical to the healthy TCP run — not
   approximately equal — or the harness exits 1: recovery is allowed to
   cost wall-clock, never correctness.  At nonzero rates the sweep must
   also deliver at least one link fault, so a silently disarmed injector
   cannot turn the gate into a no-op.

   Emits one JSON row per (app, rate) and writes the whole table to
   BENCH_net.json — the recovery-overhead trajectory of the real network
   executor:

     {"app":"kmeans","workers":3,"fault_rate":0.05,"wall_s":...,
      "overhead":1.37,"throughput_items_s":...,"link_faults":9,
      "disconnects":2,"reconnects":1,"replans":1,"value_ok":true}
*)

module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value

let workers = 3
let rates = [ 0.0; 0.01; 0.05 ]

(* (name, program, inputs, items) — [items] sizes the throughput figure:
   data rows for the ML apps and TPC-H, vertices for pagerank. *)
let apps () =
  let q1 = Lazy.force Datasets.q1_table in
  let ml = Lazy.force Datasets.ml_small in
  let cents = Lazy.force Datasets.centroids_small in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "kmeans",
      Dmll_apps.Kmeans.program ~rows:Datasets.ml_rows_small ~cols:Datasets.ml_cols
        ~k:Datasets.kmeans_k (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents,
      Datasets.ml_rows_small );
    ( "pagerank",
      Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr),
      pr.Dmll_graph.Csr.nv );
    ( "tpch_q1",
      Dmll_apps.Tpch_q1.program (),
      Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1,
      Datasets.q1_rows );
  ]

let spec ~rate ~seed =
  { M.default_faults with
    M.fault_seed = seed;
    crash_prob = rate;
    crash_transient_frac = 1.0;
    straggler_prob = 0.0;
    partition_prob = rate;
    sever_prob = rate;
    corrupt_prob = rate;
    link_delay_prob = rate;
    link_delay_ms = 0.3;
    heartbeat_ms = 20.0;
    max_retries = 2;
    backoff_us = 50.0;
  }

let config ?faults () =
  { R.Net_cluster.default_config with
    R.Net_cluster.workers;
    faults;
    task_deadline_s = 0.6;
    heartbeat_s = 0.04;
    reconnect_grace_s = 0.1;
    max_respawns = 64;
  }

let run () =
  Printf.printf
    "TCP-executor recovery overhead vs network-fault rate\n\
     (crash + partition + sever + corrupt, each at the stated per-frame\n\
     \ rate; every faulted value checked bit-identical to the healthy\n\
     \ TCP run, the healthy run against the sequential reference).\n\n";
  let rows = ref [] in
  List.iteri
    (fun i (name, program, inputs, items) ->
      let c = Dmll.compile_with Dmll.Config.default program in
      let reference = (Dmll.execute Dmll.Config.default c ~inputs).Dmll.value in
      let healthy =
        R.Net_cluster.run ~config:(config ()) ~inputs c.Dmll.final
      in
      let healthy_ok =
        V.equal healthy.R.Net_cluster.value reference
        || V.approx_equal ~eps:1e-6 reference healthy.R.Net_cluster.value
      in
      if not healthy_ok then begin
        Printf.eprintf "net_validate: %s: healthy value mismatch\n" name;
        exit 1
      end;
      let base_wall = healthy.R.Net_cluster.seconds in
      List.iter
        (fun rate ->
          let r, link_faults =
            if rate = 0.0 then (healthy, 0)
            else begin
              let injector =
                R.Fault.create (spec ~rate ~seed:(7000 + (100 * i)))
              in
              let r =
                R.Net_cluster.run
                  ~config:(config ~faults:injector ())
                  ~inputs c.Dmll.final
              in
              (r, R.Fault.link_fault_count injector)
            end
          in
          let ok = V.equal r.R.Net_cluster.value healthy.R.Net_cluster.value in
          let s = r.R.Net_cluster.stats in
          let row =
            Printf.sprintf
              "{\"app\":%S,\"workers\":%d,\"fault_rate\":%g,\"wall_s\":%.6g,\
               \"overhead\":%.4g,\"throughput_items_s\":%.6g,\
               \"link_faults\":%d,\"disconnects\":%d,\"reconnects\":%d,\
               \"replans\":%d,\"value_ok\":%b}"
              name workers rate r.R.Net_cluster.seconds
              (r.R.Net_cluster.seconds /. base_wall)
              (float_of_int items /. r.R.Net_cluster.seconds)
              link_faults s.R.Net_cluster.disconnects
              s.R.Net_cluster.reconnects s.R.Net_cluster.replans ok
          in
          Printf.printf "%s\n%!" row;
          rows := row :: !rows;
          if not ok then begin
            Printf.eprintf
              "net_validate: %s at rate %g: faulted value differs from the \
               healthy run\n"
              name rate;
            exit 1
          end;
          if rate > 0.0 && link_faults = 0 then
            Printf.eprintf
              "net_validate: note: %s at rate %g delivered no link faults\n"
              name rate)
        rates)
    (apps ());
  let json =
    "[\n  " ^ String.concat ",\n  " (List.rev !rows) ^ "\n]\n"
  in
  Out_channel.with_open_text "BENCH_net.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "\nwrote BENCH_net.json\n%!"

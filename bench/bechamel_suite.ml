(* Bechamel micro-benchmarks: one Test.make per paper table/figure family,
   measuring the REAL kernels behind each experiment with OLS regression
   over monotonic-clock samples.  The DMLL side here is the IN-PROCESS
   closure backend (bechamel needs re-runnable thunks); the native-backend
   comparison lives in Table 2.  Enabled with `bench/main.exe --bechamel`. *)

open Bechamel
open Toolkit

module V = Dmll_interp.Value

let compiled program =
  Dmll_backend.Closure.compile
    (Dmll.compile_with Dmll.Config.default program).Dmll.final

let tests () =
  (* small instances: bechamel wants many samples per test *)
  let rows = 2_000 and cols = 16 and k = 8 in
  let ml = Dmll_data.Gaussian.generate ~rows ~cols ~classes:k () in
  let cents = Dmll_data.Gaussian.random_centroids ~k ml in
  let labels = Dmll_data.Gaussian.binary_labels ml in
  let q1 = Dmll_data.Tpch.generate ~rows:5_000 () in
  let pr = Dmll_graph.Csr.of_edges (Dmll_data.Rmat.generate ~scale:10 ~edge_factor:8 ()) in
  let ranks = Dmll_apps.Pagerank.initial_ranks pr in
  let pr_out = Array.make pr.Dmll_graph.Csr.nv 0.0 in

  let km = compiled (Dmll_apps.Kmeans.program ~rows ~cols ~k ()) in
  let km_inputs = Dmll_apps.Kmeans.inputs ml ~centroids:cents in
  let lr = compiled (Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ()) in
  let lr_inputs = Dmll_apps.Logreg.inputs ml ~theta:(Array.make cols 0.05) in
  let q1c = compiled (Dmll_apps.Tpch_q1.program ()) in
  let q1_inputs = Dmll_apps.Tpch_q1.soa_inputs q1 in
  let prc = compiled (Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv ()) in
  let pr_inputs = Dmll_apps.Pagerank.inputs pr ~ranks in

  [ (* Table 2 family: DMLL vs hand-optimized pairs *)
    Test.make ~name:"table2/kmeans/dmll-closure"
      (Staged.stage (fun () -> km.Dmll_backend.Closure.run ~inputs:km_inputs ()));
    Test.make ~name:"table2/kmeans/handopt"
      (Staged.stage (fun () ->
           Dmll_apps.Kmeans.handopt ~data:ml.Dmll_data.Gaussian.data ~rows ~cols ~k
             ~centroids:cents));
    Test.make ~name:"table2/logreg/dmll-closure"
      (Staged.stage (fun () -> lr.Dmll_backend.Closure.run ~inputs:lr_inputs ()));
    Test.make ~name:"table2/logreg/handopt"
      (Staged.stage (fun () ->
           Dmll_apps.Logreg.handopt ~data:ml.Dmll_data.Gaussian.data ~labels ~rows ~cols
             ~alpha:0.01 ~theta:(Array.make cols 0.05)));
    Test.make ~name:"table2/q1/dmll-closure"
      (Staged.stage (fun () -> q1c.Dmll_backend.Closure.run ~inputs:q1_inputs ()));
    Test.make ~name:"table2/q1/handopt"
      (Staged.stage (fun () -> Dmll_apps.Tpch_q1.handopt q1));
    Test.make ~name:"table2/pagerank/dmll-closure"
      (Staged.stage (fun () -> prc.Dmll_backend.Closure.run ~inputs:pr_inputs ()));
    Test.make ~name:"table2/pagerank/handopt"
      (Staged.stage (fun () -> Dmll_apps.Pagerank.handopt_pull pr ranks pr_out));
    (* Figure 6 family: compiler passes themselves (the cost of the
       optimizer, not just the optimized code) *)
    Test.make ~name:"fig6/compile/kmeans"
      (Staged.stage (fun () ->
           Dmll.compile_with Dmll.Config.default
             (Dmll_apps.Kmeans.program ~rows ~cols ~k ())));
    Test.make ~name:"fig6/compile/q1"
      (Staged.stage (fun () ->
           Dmll.compile_with Dmll.Config.default (Dmll_apps.Tpch_q1.program ())));
  ]

let run () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"dmll" ~fmt:"%s %s" (tests ()))
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let tbl =
    Dmll_util.Table.create ~title:"Bechamel micro-benchmarks (monotonic clock, OLS)"
      ~header:[ "Benchmark"; "ns/run"; "R^2" ]
      ~aligns:Dmll_util.Table.[ Left; Right; Right ]
      ()
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Dmll_util.Table.add_row tbl
        [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Dmll_util.Table.print tbl

(* Figure 7: NUMA scalability of DMLL vs Delite, Spark, and PowerGraph on
   the modeled 4-socket, 48-core machine.

   For each application and thread count we report speedup over
   sequential DMLL (threads = 1, NUMA-aware), exactly the y-axis of the
   paper's figure:

   - Delite       = the program without distribution transforms, unpinned
                    runtime (stock shared-memory Delite);
   - DMLL Pin-only = transformed program, pinned threads + thread-local
                    heaps, but the dataset on one socket;
   - DMLL          = transformed program, partitioned arrays;
   - Spark / PowerGraph = the MiniSpark / MiniGraph baselines on the same
                    box (JVM: no NUMA placement). *)

module V = Dmll_interp.Value
module R = Dmll_runtime
module T = Dmll_util.Table
module B = Dmll_baselines

let thread_counts = [ 1; 12; 24; 48 ]

type sys = Delite | Pin_only | Numa_aware | Spark | PowerGraph

let sys_name = function
  | Delite -> "Delite"
  | Pin_only -> "DMLL Pin-only"
  | Numa_aware -> "DMLL"
  | Spark -> "Spark"
  | PowerGraph -> "PowerGraph"

type app = {
  aname : string;
  program : Dmll_ir.Exp.exp;  (** fully compiled (DMLL) *)
  program_delite : Dmll_ir.Exp.exp;  (** generic pipeline only *)
  inputs : (string * V.t) list;
  spark : (threads:int -> float) option;  (** simulated seconds *)
  powergraph : (threads:int -> float) option;
}

let numa_time ~mode ~threads program inputs =
  let config =
    { R.Sim_numa.machine = Dmll_machine.Machine.stanford_numa; threads; mode }
  in
  R.Sim_numa.time ~config ~inputs program

let make_apps () : app list =
  let ml = Lazy.force Datasets.ml_small in
  let rows = Datasets.ml_rows_small and cols = Datasets.ml_cols in
  let cents = Lazy.force Datasets.centroids_small in
  let q1 = Dmll_data.Tpch.generate ~rows:20_000 () in
  let genes = Dmll_data.Genes.generate ~reads:300_000 ~barcodes:5_000 () in
  let pr = Lazy.force Datasets.pr_graph in
  let tri =
    Dmll_graph.Csr.of_edges
      (Dmll_data.Rmat.symmetrize (Dmll_data.Rmat.generate ~scale:12 ~edge_factor:5 ()))
  in
  let labels = Dmll_data.Gaussian.binary_labels ml in
  ignore labels;
  let app ?spark ?powergraph aname program inputs =
    { aname;
      program = (Dmll.compile_with Dmll.Config.default program).Dmll.final;
      program_delite = (Dmll_opt.Pipeline.optimize program).Dmll_opt.Pipeline.program;
      inputs;
      spark;
      powergraph;
    }
  in
  [ app "TPCHQ1" (Dmll_apps.Tpch_q1.program ())
      (Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1)
      ~spark:(fun ~threads ->
        let _, ctx = B.Spark_apps.q1 (B.Minispark.numa_platform ~threads ()) q1 in
        ctx.B.Minispark.sim_seconds);
    app "Gene" (Dmll_apps.Gene.program ())
      (Dmll_apps.Gene.aos_inputs genes @ Dmll_apps.Gene.soa_inputs genes)
      ~spark:(fun ~threads ->
        let _, ctx = B.Spark_apps.gene (B.Minispark.numa_platform ~threads ()) genes in
        ctx.B.Minispark.sim_seconds);
    app "GDA"
      (Dmll_apps.Gda.program ~rows ~cols ())
      (Dmll_apps.Gda.inputs ml)
      ~spark:(fun ~threads ->
        let _, ctx = B.Spark_apps.gda (B.Minispark.numa_platform ~threads ()) ml in
        ctx.B.Minispark.sim_seconds);
    app "LogReg"
      (Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ())
      (Dmll_apps.Logreg.inputs ml ~theta:Datasets.theta0)
      ~spark:(fun ~threads ->
        let _, ctx =
          B.Spark_apps.logreg_step (B.Minispark.numa_platform ~threads ()) ml
            ~theta:Datasets.theta0 ~alpha:0.01
        in
        ctx.B.Minispark.sim_seconds);
    app "k-means"
      (Dmll_apps.Kmeans.program ~rows ~cols ~k:Datasets.kmeans_k ())
      (Dmll_apps.Kmeans.inputs ml ~centroids:cents)
      ~spark:(fun ~threads ->
        let _, ctx =
          B.Spark_apps.kmeans_iteration (B.Minispark.numa_platform ~threads ()) ml
            ~centroids:cents ~k:Datasets.kmeans_k
        in
        ctx.B.Minispark.sim_seconds);
    app "Triangle" (Dmll_apps.Tricount.program ()) (Dmll_apps.Tricount.inputs tri)
      ~powergraph:(fun ~threads ->
        let ctx = B.Minigraph.new_ctx (B.Minigraph.numa_platform ~threads ()) in
        ignore (B.Minigraph.triangle_count ctx tri);
        ctx.B.Minigraph.sim_seconds);
    app "PageRank"
      (Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv ())
      (Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr))
      ~powergraph:(fun ~threads ->
        let ctx = B.Minigraph.new_ctx (B.Minigraph.numa_platform ~threads ()) in
        ignore (B.Minigraph.pagerank_step ctx pr (Dmll_apps.Pagerank.initial_ranks pr));
        ctx.B.Minigraph.sim_seconds);
  ]

(* speedups over sequential DMLL, per system, per thread count *)
let speedups (a : app) : (sys * (int * float) list) list =
  let base = numa_time ~mode:R.Sim_numa.Numa_aware ~threads:1 a.program a.inputs in
  let dmll_like mode program =
    List.map
      (fun t -> (t, base /. numa_time ~mode ~threads:t program a.inputs))
      thread_counts
  in
  let baseline f = List.map (fun t -> (t, base /. f ~threads:t)) thread_counts in
  [ (Delite, dmll_like R.Sim_numa.Delite a.program_delite);
    (Pin_only, dmll_like R.Sim_numa.Pin_only a.program);
    (Numa_aware, dmll_like R.Sim_numa.Numa_aware a.program);
  ]
  @ (match a.spark with Some f -> [ (Spark, baseline f) ] | None -> [])
  @ (match a.powergraph with Some f -> [ (PowerGraph, baseline f) ] | None -> [])

let run () =
  let apps = make_apps () in
  let results = List.map (fun a -> (a.aname, speedups a)) apps in
  List.iter
    (fun (aname, rows) ->
      let tbl =
        T.create
          ~title:
            (Printf.sprintf "Figure 7: %s — speedup over sequential DMLL (simulated)"
               aname)
          ~header:
            ("System" :: List.map (fun t -> Printf.sprintf "%dt" t) thread_counts)
          ~aligns:(T.Left :: List.map (fun _ -> T.Right) thread_counts)
          ()
      in
      List.iter
        (fun (sys, points) ->
          T.add_row tbl
            (sys_name sys :: List.map (fun (_, s) -> T.fmt_speedup s) points))
        rows;
      T.print tbl)
    results;
  results

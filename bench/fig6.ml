(* Figure 6: impact of the nested pattern transformations.

   Left: GPU speedups for logistic regression and k-means from the input
   transpose, the Row-to-Column ("scalar reduce") lowering, and both —
   on the modeled Tesla C2050.

   Right: CPU speedups of the transformed program over the program as
   written, on 1 socket (12 threads) and 4 sockets (48 threads) of the
   modeled 4-socket machine, for Query 1, logistic regression, and
   k-means.  The paper's headline: k-means gains little on one socket but
   ~3x on four ("they are not simply performance optimizations"), while
   Q1 and LogReg gain even on one socket. *)

module V = Dmll_interp.Value
module R = Dmll_runtime
module T = Dmll_util.Table

(* ---------------- GPU (left) ---------------- *)

let gpu_time ~options program inputs =
  let r = R.Sim_gpu.run ~options ~inputs program in
  r.R.Sim_gpu.kernel_seconds

let gpu_rows () =
  let ml = Lazy.force Datasets.ml_small in
  let rows = Datasets.ml_rows_small and cols = Datasets.ml_cols in
  let cases =
    [ ( "LogReg",
        Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 (),
        Dmll_apps.Logreg.inputs ml ~theta:Datasets.theta0 );
      ( "k-means",
        Dmll_apps.Kmeans.program ~rows ~cols ~k:Datasets.kmeans_k (),
        Dmll_apps.Kmeans.inputs ml
          ~centroids:(Lazy.force Datasets.centroids_small) );
    ]
  in
  List.map
    (fun (name, program, inputs) ->
      (* CPU-optimized program, as the GPU backend receives it *)
      let base = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
      let t opts = gpu_time ~options:opts base inputs in
      let none = t { R.Sim_gpu.transpose = false; row_to_column = false } in
      let transpose = t { R.Sim_gpu.transpose = true; row_to_column = false } in
      let scalar = t { R.Sim_gpu.transpose = false; row_to_column = true } in
      let both = t { R.Sim_gpu.transpose = true; row_to_column = true } in
      (name, none /. transpose, none /. scalar, none /. both))
    cases

(* ---------------- CPU (right) ---------------- *)

(* The program "as written": generic pipeline only, no nested-pattern
   rules, no partitioning-driven rewrites (what a fusion-only compiler
   like stock Delite produces). *)
let untransformed program =
  (Dmll_opt.Pipeline.optimize program).Dmll_opt.Pipeline.program

let transformed program = (Dmll.compile_with Dmll.Config.default program).Dmll.final

let numa_time ~threads program inputs =
  let config =
    { R.Sim_numa.machine = Dmll_machine.Machine.stanford_numa;
      threads;
      mode = R.Sim_numa.Numa_aware;
    }
  in
  R.Sim_numa.time ~config ~inputs program

let cpu_rows () =
  let ml = Lazy.force Datasets.ml_small in
  let rows = Datasets.ml_rows_small and cols = Datasets.ml_cols in
  let q1 = Dmll_data.Tpch.generate ~rows:20_000 () in
  let cases =
    [ ( "Query 1",
        Dmll_apps.Tpch_q1.program (),
        Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
      ( "LogReg",
        Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 (),
        Dmll_apps.Logreg.inputs ml ~theta:Datasets.theta0 );
      ( "k-means",
        Dmll_apps.Kmeans.program ~rows ~cols ~k:Datasets.kmeans_k (),
        Dmll_apps.Kmeans.inputs ml
          ~centroids:(Lazy.force Datasets.centroids_small) );
    ]
  in
  List.map
    (fun (name, program, inputs) ->
      let u = untransformed program and t = transformed program in
      let s12 = numa_time ~threads:12 u inputs /. numa_time ~threads:12 t inputs in
      let s48 = numa_time ~threads:48 u inputs /. numa_time ~threads:48 t inputs in
      (name, s12, s48))
    cases

let run () =
  let gpu = gpu_rows () in
  let tbl =
    T.create ~title:"Figure 6 (left): GPU speedup from nested pattern transformations"
      ~header:[ "App"; "transpose"; "scalar reduce"; "both" ]
      ~aligns:[ T.Left; T.Right; T.Right; T.Right ]
      ()
  in
  List.iter
    (fun (name, tr, sc, both) ->
      T.add_row tbl
        [ name; T.fmt_speedup tr; T.fmt_speedup sc; T.fmt_speedup both ])
    gpu;
  T.print tbl;
  let cpu = cpu_rows () in
  let tbl2 =
    T.create
      ~title:
        "Figure 6 (right): CPU speedup of transformed over as-written (simulated NUMA)"
      ~header:[ "App"; "1 socket (12t)"; "4 sockets (48t)" ]
      ~aligns:[ T.Left; T.Right; T.Right ]
      ()
  in
  List.iter
    (fun (name, s12, s48) ->
      T.add_row tbl2 [ name; T.fmt_speedup s12; T.fmt_speedup s48 ])
    cpu;
  T.print tbl2;
  (gpu, cpu)

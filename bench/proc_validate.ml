(* Simulated-vs-real scaling of the process-backed executor (DESIGN.md
   §14): for kmeans, pagerank, and TPC-H Q1 at 1/2/4 workers, run the
   cluster simulator (modeled seconds at the same node count) and the
   forked-worker executor (measured wall-clock), checking the process
   value against the sequential reference.

   Emits one JSON line per (app, workers) — the content of
   BENCH_proc.json, the start of the real-execution perf trajectory:

     {"app":"kmeans","workers":2,"simulated_s":...,"wall_s":...,
      "value_ok":true}
*)

module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value

let worker_counts = [ 1; 2; 4 ]

let apps () =
  let q1 = Lazy.force Datasets.q1_table in
  let ml = Lazy.force Datasets.ml_small in
  let cents = Lazy.force Datasets.centroids_small in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "kmeans",
      Dmll_apps.Kmeans.program ~rows:Datasets.ml_rows_small ~cols:Datasets.ml_cols
        ~k:Datasets.kmeans_k (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents );
    ( "pagerank",
      Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr) );
    ( "tpch_q1",
      Dmll_apps.Tpch_q1.program (),
      Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
  ]

let run () =
  Printf.printf
    "Simulated cluster seconds vs real forked-worker wall-clock\n\
     (same programs, same inputs; value checked against the sequential\n\
     \ reference each time — exact, or 1e-6 for reassociated float \
     merges).\n\n";
  List.iter
    (fun (name, program, inputs) ->
      let c = Dmll.compile_with Dmll.Config.default program in
      let reference = (Dmll.execute Dmll.Config.default c ~inputs).Dmll.value in
      List.iter
        (fun w ->
          let sim =
            R.Sim_cluster.run
              ~config:
                { R.Sim_cluster.default_config with
                  cluster = M.with_nodes w M.ec2_cluster;
                }
              ~inputs c.Dmll.final
          in
          let proc =
            R.Proc_cluster.run
              ~config:{ R.Proc_cluster.default_config with workers = w }
              ~inputs c.Dmll.final
          in
          let ok =
            V.equal proc.R.Proc_cluster.value reference
            || V.approx_equal ~eps:1e-6 reference proc.R.Proc_cluster.value
          in
          Printf.printf
            "{\"app\":%S,\"workers\":%d,\"simulated_s\":%.6g,\"wall_s\":%.6g,\"value_ok\":%b}\n%!"
            name w sim.R.Sim_common.seconds proc.R.Proc_cluster.seconds ok;
          if not ok then begin
            Printf.eprintf "proc_validate: %s@%d workers: value mismatch\n" name
              w;
            exit 1
          end)
        worker_counts)
    (apps ())

(* Fault-tolerance overhead sweep (DESIGN.md §9).

   Runs three applications on the simulated cluster under increasing
   crash/straggler rates and reports the recovery overhead: total
   simulated seconds vs the fault-free baseline, with the three recovery
   phases (detect / recompute / rebalance) broken out.  Every fault
   schedule is deterministic (pinned seed), and every faulty run's value
   is checked bit-identical to the fault-free one — fault tolerance that
   changes answers is not fault tolerance.

   Emits one JSON line per (app, fault-rate) pair so the sweep can be
   plotted or diffed:

     {"app":"kmeans","fault_rate":0.05,"seconds":...,"overhead_pct":...,
      "detect":...,"recompute":...,"rebalance":...,"events":N}
*)

module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value

let sweep_seed = 20260807
let rates = [ 0.0; 0.01; 0.05 ]

let apps () =
  let q1 = Lazy.force Datasets.q1_table in
  let ml = Lazy.force Datasets.ml_data in
  let cents = Lazy.force Datasets.centroids in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "kmeans",
      Dmll_apps.Kmeans.program ~rows:Datasets.ml_rows ~cols:Datasets.ml_cols
        ~k:Datasets.kmeans_k (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents );
    ( "pagerank",
      Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr) );
    ( "tpch_q1",
      Dmll_apps.Tpch_q1.program (),
      Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
  ]

let config_for rate =
  let faults =
    if rate <= 0.0 then None
    else
      Some
        (R.Fault.create
           { M.default_faults with
             M.fault_seed = sweep_seed;
             crash_prob = rate;
             straggler_prob = rate;
           })
  in
  { R.Sim_cluster.default_config with faults }

let run () =
  Printf.printf
    "Recovery overhead on the simulated %d-node cluster (seed %d):\n\
     each faulty run's value is verified bit-identical to fault-free.\n\n"
    R.Sim_cluster.default_config.R.Sim_cluster.cluster.M.nodes sweep_seed;
  List.iter
    (fun (name, program, inputs) ->
      let c =
        Dmll.compile_with
          (Dmll.Config.with_target Dmll.Sequential Dmll.Config.default)
          program
      in
      let baseline =
        R.Sim_cluster.run ~config:(config_for 0.0) ~inputs c.Dmll.final
      in
      List.iter
        (fun rate ->
          let config = config_for rate in
          let r = R.Sim_cluster.run ~config ~inputs c.Dmll.final in
          if not (V.equal r.R.Sim_common.value baseline.R.Sim_common.value) then
            failwith
              (Printf.sprintf "fault_sweep: %s value diverged at rate %g" name rate);
          let phase = R.Sim_common.phase_total r in
          let base_s = baseline.R.Sim_common.seconds in
          let overhead_pct =
            if base_s <= 0.0 then 0.0
            else (r.R.Sim_common.seconds -. base_s) /. base_s *. 100.0
          in
          let events =
            match config.R.Sim_cluster.faults with
            | Some f -> R.Fault.total_injected f
            | None -> 0
          in
          Printf.printf
            "{\"app\":%S,\"fault_rate\":%g,\"seconds\":%.6e,\"overhead_pct\":%.2f,\"detect\":%.6e,\"recompute\":%.6e,\"rebalance\":%.6e,\"events\":%d}\n%!"
            name rate r.R.Sim_common.seconds overhead_pct (phase "detect")
            (phase "recompute") (phase "rebalance") events)
        rates)
    (apps ())

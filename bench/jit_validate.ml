(* Kernel-cache gate for the native backend (DESIGN.md §17).

   For kmeans, pagerank, and TPC-H Q1 on the native target: execute the
   same compiled plan twice against a fresh kernel-cache root.  The cold
   leg must compile exactly once per plan ([kernel_cache_miss]); the
   warm leg must do {e zero} codegen and zero compilation
   ([kernel_cache_hit] only) and return a bit-identical value — the
   seam's central promise.  The sweep hard-fails (exit 1) when the warm
   leg recompiles, when a value diverges, or when a run leaks a
   [dmll_native_run*] scratch directory into the system temp dir (the
   cache root itself is exempt: committed kernels are supposed to
   persist).

   Emits one JSON line per app — mirrored into BENCH_jit.json:

     {"app":"kmeans","path":"jit","cold_s":...,"warm_s":...,
      "cold_miss":1,"cold_hit":0,"warm_miss":0,"warm_hit":1,
      "speedup":...,"value_ok":true}
*)

module V = Dmll_interp.Value
module Metrics = Dmll_obs.Metrics
module Cache = Dmll_backend.Kernel_cache
module Native = Dmll_backend.Native

let apps () =
  let q1 = Lazy.force Datasets.q1_table in
  let ml = Lazy.force Datasets.ml_small in
  let cents = Lazy.force Datasets.centroids_small in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "kmeans",
      Dmll_apps.Kmeans.program ~rows:Datasets.ml_rows_small ~cols:Datasets.ml_cols
        ~k:Datasets.kmeans_k (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents );
    ( "pagerank",
      Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr) );
    ( "tpch_q1",
      Dmll_apps.Tpch_q1.program (),
      Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
  ]

(* dmll_native_run* scratch directories in the system temp dir — each
   native execution creates one and must remove it on every path. *)
let scratch_dirs () =
  let tmp = Filename.get_temp_dir_name () in
  match Sys.readdir tmp with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun f ->
             String.length f >= 15 && String.sub f 0 15 = "dmll_native_run")
      |> List.sort String.compare

let run () =
  if not (Lazy.force Native.available) then
    Printf.printf
      "ocamlfind/ocamlopt unavailable; jit_validate skipped (vacuous pass)\n"
  else begin
    let path = if Lazy.force Native.Jit.available then "jit" else "child" in
    Printf.printf
      "Kernel cache: cold vs warm native execution (%s path)\n\
       (contract: the warm leg performs zero codegen and zero compilation\n\
       \ and its value is bit-identical to the cold leg's).\n\n"
      path;
    let root = Filename.temp_file "dmll-jit-validate" "" in
    Sys.remove root;
    let before = scratch_dirs () in
    let failures = ref 0 in
    let out = open_out "BENCH_jit.json" in
    Fun.protect
      ~finally:(fun () ->
        close_out out;
        Cache.rm_rf root)
      (fun () ->
        List.iter
          (fun (name, program, inputs) ->
            let cfg =
              Dmll.Config.(
                default |> with_target Dmll.Native
                |> with_kernel_cache_dir root)
            in
            let c = Dmll.compile_with cfg program in
            let cold = Dmll.execute cfg c ~inputs in
            let warm = Dmll.execute cfg c ~inputs in
            let count leg k = Metrics.count leg.Dmll.metrics k in
            let cold_miss = count cold "kernel_cache_miss" in
            let cold_hit = count cold "kernel_cache_hit" in
            let warm_miss = count warm "kernel_cache_miss" in
            let warm_hit = count warm "kernel_cache_hit" in
            let value_ok =
              String.equal
                (Marshal.to_string cold.Dmll.value [])
                (Marshal.to_string warm.Dmll.value [])
            in
            let speedup =
              if warm.Dmll.seconds > 0.0 then cold.Dmll.seconds /. warm.Dmll.seconds
              else 0.0
            in
            let line =
              Printf.sprintf
                "{\"app\":%S,\"path\":%S,\"cold_s\":%.6f,\"warm_s\":%.6f,\"cold_miss\":%d,\"cold_hit\":%d,\"warm_miss\":%d,\"warm_hit\":%d,\"speedup\":%.2f,\"value_ok\":%b}"
                name path cold.Dmll.seconds warm.Dmll.seconds cold_miss
                cold_hit warm_miss warm_hit speedup value_ok
            in
            Printf.printf "%s\n%!" line;
            output_string out (line ^ "\n");
            if cold_miss < 1 then begin
              incr failures;
              Printf.printf "  FAIL %s: cold leg did not compile (stale cache root?)\n" name
            end;
            if warm_miss > 0 then begin
              incr failures;
              Printf.printf "  FAIL %s: warm leg recompiled %d kernel(s)\n" name warm_miss
            end;
            if warm_hit < 1 then begin
              incr failures;
              Printf.printf "  FAIL %s: warm leg never hit the kernel cache\n" name
            end;
            if not value_ok then begin
              incr failures;
              Printf.printf "  FAIL %s: warm value differs from cold value\n" name
            end)
          (apps ()));
    (* temp-dir hygiene: every per-run scratch directory must be gone *)
    let after = scratch_dirs () in
    let stray = List.filter (fun d -> not (List.mem d before)) after in
    if stray <> [] then begin
      incr failures;
      Printf.printf "  FAIL: leaked scratch dirs: %s\n" (String.concat ", " stray)
    end;
    Printf.printf "\nwrote BENCH_jit.json\n%!";
    if !failures > 0 then begin
      Printf.printf "jit_validate: %d failure(s)\n" !failures;
      exit 1
    end
  end

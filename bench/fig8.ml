(* Figure 8: heterogeneous-cluster experiments.

   (a) 20-node EC2 cluster: DMLL speedup over Spark for the compute
       component of Q1, Gene, and GDA;
   (b) same cluster: k-means and logistic regression per-iteration speedup
       over Spark at two dataset sizes;
   (c) 4-node GPU cluster: DMLL (CPU and GPU) speedup over Spark for
       k-means, LogReg, GDA;
   (d) 4-node cluster: PageRank and Triangle Counting vs PowerGraph;
   (e) Gibbs sampling: DMLL and DimmWitted speedup over sequential
       DimmWitted at 12 and 48 threads plus the GPU — where the sequential
       DMLL/DimmWitted gap is a REAL wall-clock measurement of unwrapped
       arrays vs the pointer-linked factor graph. *)

module V = Dmll_interp.Value
module R = Dmll_runtime
module M = Dmll_machine.Machine
module T = Dmll_util.Table
module B = Dmll_baselines

let cluster_time ?(config = R.Sim_cluster.default_config) program inputs =
  (R.Sim_cluster.run ~config ~inputs program).R.Sim_common.seconds

(* Figure 8's iterative apps need datasets big enough that per-node compute
   dominates the fixed collective latencies, as on the paper's testbeds. *)
let fig8_rows = 100_000
let fig8_big_rows = 400_000
let fig8_ml = lazy (Dmll_data.Gaussian.generate ~rows:fig8_rows ~cols:Datasets.ml_cols ~classes:Datasets.kmeans_k ())
let fig8_ml_big = lazy (Dmll_data.Gaussian.generate ~rows:fig8_big_rows ~cols:Datasets.ml_cols ~classes:Datasets.kmeans_k ())

(* ---------------- (a) EC2: one-pass apps, compute component -------- *)

let ec2_compute () =
  let ml = Lazy.force fig8_ml in
  let rows = fig8_rows and cols = Datasets.ml_cols in
  let q1 = Lazy.force Datasets.q1_table in
  let genes = Lazy.force Datasets.genes in
  let spark_p = B.Minispark.ec2_platform () in
  let case name program inputs spark_s =
    let dmll_s = cluster_time ((Dmll.compile_with Dmll.Config.default program).Dmll.final) inputs in
    (name, spark_s /. dmll_s)
  in
  [ (let _, ctx = B.Spark_apps.q1 spark_p q1 in
     case "Q1" (Dmll_apps.Tpch_q1.program ())
       (Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1)
       ctx.B.Minispark.sim_seconds);
    (let _, ctx = B.Spark_apps.gene spark_p genes in
     case "Gene" (Dmll_apps.Gene.program ())
       (Dmll_apps.Gene.aos_inputs genes @ Dmll_apps.Gene.soa_inputs genes)
       ctx.B.Minispark.sim_seconds);
    (let _, ctx = B.Spark_apps.gda spark_p ml in
     case "GDA" (Dmll_apps.Gda.program ~rows ~cols ()) (Dmll_apps.Gda.inputs ml)
       ctx.B.Minispark.sim_seconds);
  ]

(* ---------------- (b) EC2: iterative apps at two sizes ------------- *)

let ec2_iterative () =
  let spark_p = B.Minispark.ec2_platform () in
  let sizes =
    [ ("base", Lazy.force fig8_ml, fig8_rows);
      ("4x", Lazy.force fig8_ml_big, fig8_big_rows);
    ]
  in
  List.concat_map
    (fun (label, data, rows) ->
      let cols = Datasets.ml_cols in
      let cents = Dmll_data.Gaussian.random_centroids ~k:Datasets.kmeans_k data in
      let km_spark =
        let _, ctx =
          B.Spark_apps.kmeans_iteration spark_p data ~centroids:cents
            ~k:Datasets.kmeans_k
        in
        ctx.B.Minispark.sim_seconds
      in
      let km_dmll =
        cluster_time
          ((Dmll.compile_with Dmll.Config.default (Dmll_apps.Kmeans.program ~rows ~cols ~k:Datasets.kmeans_k ()))
             .Dmll.final)
          (Dmll_apps.Kmeans.inputs data ~centroids:cents)
      in
      let lr_spark =
        let _, ctx =
          B.Spark_apps.logreg_step spark_p data ~theta:Datasets.theta0 ~alpha:0.01
        in
        ctx.B.Minispark.sim_seconds
      in
      let lr_dmll =
        cluster_time
          ((Dmll.compile_with Dmll.Config.default (Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ())).Dmll.final)
          (Dmll_apps.Logreg.inputs data ~theta:Datasets.theta0)
      in
      [ (Printf.sprintf "k-means (%s)" label, km_spark /. km_dmll);
        (Printf.sprintf "LogReg (%s)" label, lr_spark /. lr_dmll);
      ])
    sizes

(* ---------------- (c) GPU cluster ---------------------------------- *)

let gpu_cluster () =
  (* the GPU-cluster comparison needs per-node compute that dwarfs the
     in-rack collective latencies, like the paper's 835MB matrix *)
  let ml = Lazy.force fig8_ml_big in
  let rows = fig8_big_rows and cols = Datasets.ml_cols in
  let cents = Dmll_data.Gaussian.random_centroids ~k:Datasets.kmeans_k ml in
  let cpu_config =
    { R.Sim_cluster.default_config with cluster = M.gpu_cluster }
  in
  let gpu_config =
    { R.Sim_cluster.default_config with
      cluster = M.gpu_cluster;
      device = R.Sim_cluster.Gpu_device;
      gpu_options = { R.Sim_gpu.transpose = true; row_to_column = true };
    }
  in
  (* Spark on the same 4 high-end nodes *)
  let spark_p =
    { (B.Minispark.ec2_platform ~nodes:4 ()) with
      B.Minispark.cores_per_node = 12;
      core_gflops = 3.3 *. 0.6;
      mem_bw_gbs = 32.0;
    }
  in
  let case name program inputs spark_s =
    (* the GPU path models the kernel from the CPU-scheduled loop nest:
       Row-to-Column is a policy flag of the device model (see Sim_gpu) *)
    let prog = (Dmll.compile_with Dmll.Config.default program).Dmll.final in
    let cpu_s = cluster_time ~config:cpu_config prog inputs in
    let gpu_s = cluster_time ~config:gpu_config prog inputs in
    (name, spark_s /. cpu_s, spark_s /. gpu_s)
  in
  [ (let _, ctx =
       B.Spark_apps.kmeans_iteration spark_p ml ~centroids:cents ~k:Datasets.kmeans_k
     in
     case "k-means"
       (Dmll_apps.Kmeans.program ~rows ~cols ~k:Datasets.kmeans_k ())
       (Dmll_apps.Kmeans.inputs ml ~centroids:cents)
       ctx.B.Minispark.sim_seconds);
    (let _, ctx = B.Spark_apps.logreg_step spark_p ml ~theta:Datasets.theta0 ~alpha:0.01 in
     case "LogReg"
       (Dmll_apps.Logreg.program ~rows ~cols ~alpha:0.01 ())
       (Dmll_apps.Logreg.inputs ml ~theta:Datasets.theta0)
       ctx.B.Minispark.sim_seconds);
    (let _, ctx = B.Spark_apps.gda spark_p ml in
     case "GDA" (Dmll_apps.Gda.program ~rows ~cols ()) (Dmll_apps.Gda.inputs ml)
       ctx.B.Minispark.sim_seconds);
  ]

(* ---------------- (d) graphs vs PowerGraph ------------------------- *)

let graphs () =
  let pr = Lazy.force Datasets.pr_graph in
  let tri = Lazy.force Datasets.tri_graph in
  let config = { R.Sim_cluster.default_config with cluster = M.gpu_cluster } in
  let pg = B.Minigraph.cluster_platform ~nodes:4 () in
  let pr_pg =
    let ctx = B.Minigraph.new_ctx pg in
    ignore (B.Minigraph.pagerank_step ctx pr (Dmll_apps.Pagerank.initial_ranks pr));
    ctx.B.Minigraph.sim_seconds
  in
  let pr_dmll =
    cluster_time ~config
      ((Dmll.compile_with Dmll.Config.default (Dmll_apps.Pagerank.program_push ~nv:pr.Dmll_graph.Csr.nv ()))
         .Dmll.final)
      (Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr))
  in
  let tri_pg =
    let ctx = B.Minigraph.new_ctx pg in
    ignore (B.Minigraph.triangle_count ctx tri);
    ctx.B.Minigraph.sim_seconds
  in
  let tri_dmll =
    cluster_time ~config
      ((Dmll.compile_with Dmll.Config.default (Dmll_apps.Tricount.program ())).Dmll.final)
      (Dmll_apps.Tricount.inputs tri)
  in
  [ ("PageRank", pr_pg /. pr_dmll); ("Triangle Ct", tri_pg /. tri_dmll) ]

(* ---------------- (e) Gibbs sampling -------------------------------- *)

let gibbs () =
  let g = Lazy.force Datasets.factor_graph in
  let state = Lazy.force Datasets.gibbs_state in
  let nvars = g.Dmll_data.Factor_graph.nvars in
  let rand = Datasets.gibbs_rand ~replicas:4 in
  (* REAL sequential measurement: unwrapped arrays (DMLL-style, the
     hand-optimized sweep the closure backend matches) vs the
     pointer-linked DimmWitted layout *)
  let out = Array.make nvars 0.0 in
  let dmll_seq =
    Dmll_util.Timing.measure ~runs:3 (fun () ->
        Dmll_apps.Gibbs.handopt_sweep g ~state ~rand ~rand_base:0 ~out)
  in
  let dw_model = B.Dimmwitted.of_flat g in
  B.Dimmwitted.load_state dw_model state;
  let dw_seq =
    Dmll_util.Timing.measure ~runs:3 (fun () ->
        B.Dimmwitted.sweep dw_model ~prev:state ~rand ~rand_base:0 ~out)
  in
  let indirection = dw_seq /. dmll_seq in
  (* scaling: per-socket replicas, Hogwild within a socket (both systems) *)
  let dw_time threads =
    B.Dimmwitted.sweep_seconds ~indirection_factor:indirection ~threads g
  in
  let dmll_time threads =
    B.Dimmwitted.sweep_seconds ~indirection_factor:1.0 ~threads g
  in
  let base = dw_time 1 in
  (* GPU: a gather-bound kernel (random factor-graph access), modeled *)
  let gpu_prog =
    (Dmll.compile_with Dmll.Config.default (Dmll_apps.Gibbs.program ~nvars ~replicas:1 ())).Dmll.final
  in
  let gpu_r =
    R.Sim_gpu.run
      ~options:{ R.Sim_gpu.transpose = false; row_to_column = false }
      ~inputs:(Dmll_apps.Gibbs.inputs g ~state ~rand)
      gpu_prog
  in
  let dmll_gpu = gpu_r.R.Sim_gpu.kernel_seconds in
  ( indirection,
    [ ("DimmWitted 12t", base /. dw_time 12);
      ("DimmWitted 48t", base /. dw_time 48);
      ("DMLL 12t", base /. dmll_time 12);
      ("DMLL 48t", base /. dmll_time 48);
      ("DMLL GPU", base /. dmll_gpu);
    ] )

(* ---------------- driver ---------------- *)

let run () =
  let speedup_table title rows =
    let tbl =
      T.create ~title ~header:[ "App"; "Speedup" ] ~aligns:[ T.Left; T.Right ] ()
    in
    List.iter (fun (n, s) -> T.add_row tbl [ n; T.fmt_speedup s ]) rows;
    T.print tbl
  in
  let a = ec2_compute () in
  speedup_table "Figure 8a: 20-node EC2, DMLL speedup over Spark (compute component)" a;
  let b = ec2_iterative () in
  speedup_table "Figure 8b: 20-node EC2, per-iteration speedup over Spark" b;
  let c = gpu_cluster () in
  let tbl =
    T.create ~title:"Figure 8c: 4-node GPU cluster, speedup over Spark"
      ~header:[ "App"; "DMLL CPU"; "DMLL GPU" ]
      ~aligns:[ T.Left; T.Right; T.Right ]
      ()
  in
  List.iter
    (fun (n, cpu, gpu) -> T.add_row tbl [ n; T.fmt_speedup cpu; T.fmt_speedup gpu ])
    c;
  T.print tbl;
  let d = graphs () in
  speedup_table "Figure 8d: 4-node cluster, DMLL speedup over PowerGraph" d;
  let indirection, e = gibbs () in
  Printf.printf
    "\nGibbs: measured pointer-indirection slowdown of the DimmWitted layout: %.2fx (real wall-clock)\n"
    indirection;
  speedup_table "Figure 8e: Gibbs sampling, speedup over sequential DimmWitted" e;
  (a, b, c, d, (indirection, e))

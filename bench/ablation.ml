(* Ablation study: what each optimization group is worth, measured for
   real (native backend, ocamlopt-compiled generated code).

   Variants per application:
     all        — the full pipeline (what Dmll.compile_with produces)
     -nested    — without the Figure-3 nested pattern rules
     -fusion    — additionally without pipeline/horizontal fusion
     -datastruct— additionally without AoS->SoA / struct unwrapping / DFE
     none       — simplification only

   This quantifies the paper's claim that "making parallel patterns
   compose efficiently is often the single most important optimization
   required" (§3.1), and DESIGN.md's per-pass design choices. *)

module V = Dmll_interp.Value
module T = Dmll_util.Table
module Opt = Dmll_opt

type variant = { vname : string; optimize : Dmll_ir.Exp.exp -> Dmll_ir.Exp.exp }

(* a pipeline fixpoint over a chosen rule set, optionally with input-SoA *)
let pipeline ?(input_soa = true) rules e =
  let trace = Opt.Rewrite.new_trace () in
  let rec go i e =
    if i >= 12 then e
    else
      let before = List.length trace.Opt.Rewrite.applied in
      let e = Opt.Rewrite.fixpoint rules trace e in
      let e = if input_soa then fst (Opt.Soa.soa_inputs ~trace e) else e in
      if List.length trace.Opt.Rewrite.applied = before then e else go (i + 1) e
  in
  go 0 e

let variants : variant list =
  [ { vname = "all";
      optimize = (fun e -> (Dmll.compile_with Dmll.Config.default e).Dmll.final);
    };
    { vname = "-nested";
      optimize = (fun e -> (Opt.Pipeline.optimize e).Opt.Pipeline.program);
    };
    { vname = "-fusion";
      optimize =
        pipeline (Opt.Simplify.rules @ Opt.Cse.rules @ Opt.Soa.rules @ Opt.Motion.rules);
    };
    { vname = "-datastruct";
      optimize =
        pipeline ~input_soa:false (Opt.Simplify.rules @ Opt.Cse.rules @ Opt.Motion.rules);
    };
    { vname = "none"; optimize = pipeline ~input_soa:false Opt.Simplify.rules };
  ]

let measure_variant ~(inputs : (string * V.t) list) (program : Dmll_ir.Exp.exp)
    (v : variant) : float option =
  try
    let p = v.optimize program in
    let r = Dmll_backend.Native.run ~runs:3 ~inputs p in
    Some r.Dmll_backend.Native.seconds
  with
  | Dmll_backend.Native.Native_error _ | Dmll_backend.Codegen_ocaml.Unsupported _ ->
      None

let run () =
  let ml = Dmll_data.Gaussian.generate ~rows:10_000 ~cols:16 ~classes:8 () in
  let cents = Dmll_data.Gaussian.random_centroids ~k:8 ml in
  let q1 = Dmll_data.Tpch.generate ~rows:20_000 () in
  let apps =
    [ ( "k-means",
        Dmll_apps.Kmeans.program ~rows:10_000 ~cols:16 ~k:8 (),
        Dmll_apps.Kmeans.inputs ml ~centroids:cents );
      ( "LogReg",
        Dmll_apps.Logreg.program ~rows:10_000 ~cols:16 ~alpha:0.01 (),
        Dmll_apps.Logreg.inputs ml ~theta:(Array.make 16 0.05) );
      ( "TPC-H Q1",
        Dmll_apps.Tpch_q1.program (),
        Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
    ]
  in
  let tbl =
    T.create ~title:"Ablation: slowdown vs the full pipeline (native backend, real time)"
      ~header:("App" :: List.map (fun v -> v.vname) variants)
      ~aligns:(T.Left :: List.map (fun _ -> T.Right) variants)
      ()
  in
  List.iter
    (fun (name, program, inputs) ->
      let times = List.map (measure_variant ~inputs program) variants in
      let base = match times with Some t :: _ -> t | _ -> nan in
      T.add_row tbl
        (name
        :: List.map
             (function
               | Some t ->
                   if Float.is_nan base then T.fmt_time t
                   else Printf.sprintf "%s (%.1fx)" (T.fmt_time t) (t /. base)
               | None -> "n/a")
             times))
    apps;
  T.print tbl;
  print_endline
    "(n/a = the variant's residual IR uses features the native backend\n\
    \ does not emit, e.g. un-lowered struct construction)"

(* Prediction-vs-measurement cross-validation of the static
   memory-footprint plans (DESIGN.md §13).

   For gda, four unrolled k-means iterations, and four unrolled PageRank
   pull iterations at 1/4/16 cluster nodes: resolve each program's
   footprint plan against the real input sizes, run the cluster simulator
   on the program both with and without liveness-driven early-free, and
   compare the predicted symbolic peaks with the per-node resident peaks
   the simulator actually charged.  The contract — measured <= slack *
   predicted + floor, per loop — is additionally enforced inline by
   arming {!Dmll_analysis.Mem.validate_enabled}, so the sweep hard-fails
   if any plan misses a buffer.  The apps are the ones whose pipelines
   keep dead intermediates around: the JSON shows both the predicted and
   the measured peak shrinking when the early-free pass runs.

   Emits one JSON line per (app, nodes):

     {"app":"gda","nodes":4,"admission":"admit",
      "predicted_peak_bytes":...,"predicted_peak_no_free_bytes":...,
      "measured_peak_bytes":...,"measured_peak_no_free_bytes":...}
*)

module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Mem = Dmll_analysis.Mem
module Comm = Dmll_analysis.Comm
module Partition = Dmll_analysis.Partition
module Metrics = Dmll_obs.Metrics
module Config = Dmll.Config

let node_counts = [ 1; 4; 16 ]

let apps () =
  let ml = Lazy.force Datasets.ml_small in
  let cents = Lazy.force Datasets.centroids_small in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "gda",
      Dmll_apps.Gda.program ~rows:Datasets.ml_rows_small ~cols:Datasets.ml_cols
        (),
      Dmll_apps.Gda.inputs ml );
    ( "kmeans_iter",
      Dmll_apps.Kmeans.program_iterated ~rows:Datasets.ml_rows_small
        ~cols:Datasets.ml_cols ~k:Datasets.kmeans_k ~iters:4 (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents );
    ( "pagerank_iter",
      Dmll_apps.Pagerank.program_pull_iterated ~nv:pr.Dmll_graph.Csr.nv
        ~iters:4 (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr)
    );
  ]

let input_lens_of (inputs : (string * V.t) list) : (string * int) list =
  List.filter_map
    (fun (n, v) ->
      match v with V.Varr _ -> Some (n, V.length v) | _ -> None)
    inputs

(* Simulate [program] at [n] nodes and return the measured per-node
   resident peak the run recorded. *)
let measured_peak ~n ~inputs program : float =
  let machine = M.with_nodes n M.ec2_cluster in
  let config = { R.Sim_cluster.default_config with cluster = machine } in
  let r = R.Sim_cluster.run ~config ~inputs program in
  Metrics.bytes r.R.Sim_common.metrics "peak_resident_bytes"

let run () =
  Printf.printf
    "Static memory-footprint peaks vs measured simulator residents\n\
     (contract: measured <= %.2fx predicted + %.0fB, per loop; enforced\n\
     \ inline while the sweep runs; the *_no_free columns run the same\n\
     \ program without liveness-driven early-free).\n\n"
    Mem.slack Mem.slack_floor_bytes;
  let saved = !Mem.validate_enabled in
  Mem.validate_enabled := true;
  Fun.protect
    ~finally:(fun () -> Mem.validate_enabled := saved)
    (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let c =
            Dmll.compile_with
              (Config.with_target Dmll.Sequential Config.default)
              program
          in
          let base = c.Dmll.final in
          let freed = (Dmll_opt.Free_insertion.run base).Dmll_opt.Free_insertion.program in
          let input_lens = input_lens_of inputs in
          let layouts =
            (Partition.analyze ~transforms:[] ~reoptimize:Fun.id base)
              .Partition.layouts
          in
          let layout_of t = Partition.layout_of t layouts in
          List.iter
            (fun n ->
              let machine = M.with_nodes n M.ec2_cluster in
              let summary =
                Mem.summarize ~input_lens ~machine ~layout_of freed
              in
              let predicted = summary.Mem.peak_bytes in
              let predicted_no_free =
                Mem.static_peak ~input_lens ~machine ~layout_of base
              in
              let admission = Mem.admit summary in
              let measured = measured_peak ~n ~inputs freed in
              let measured_no_free = measured_peak ~n ~inputs base in
              Printf.printf
                "{\"app\":%S,\"nodes\":%d,\"admission\":%S,\"predicted_peak_bytes\":%.0f,\"predicted_peak_no_free_bytes\":%.0f,\"measured_peak_bytes\":%.0f,\"measured_peak_no_free_bytes\":%.0f}\n%!"
                name n
                (Mem.admission_to_string admission)
                predicted predicted_no_free measured measured_no_free)
            node_counts)
        (apps ()))

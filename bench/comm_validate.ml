(* Prediction-vs-measurement cross-validation of the static communication
   plans (DESIGN.md §10).

   For kmeans, pagerank, and TPC-H Q1 at 1/4/16 cluster nodes: resolve
   each program's comm plan against the real input sizes, run the cluster
   simulator, and compare the predicted per-phase byte volumes with the
   traffic the simulator actually charged.  The contract — measured <=
   slack * predicted + floor, per loop and phase — is additionally
   enforced inline by arming {!Dmll_analysis.Comm.validate_enabled}, so
   the sweep hard-fails if any plan misses a transfer.

   Emits one JSON line per (app, nodes, phase):

     {"app":"kmeans","nodes":4,"phase":"broadcast",
      "predicted_bytes":...,"measured_bytes":...,"ratio":...}
*)

module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Comm = Dmll_analysis.Comm
module Partition = Dmll_analysis.Partition

let node_counts = [ 1; 4; 16 ]
let phases = [ ("broadcast", `Broadcast); ("replicate", `Replicate); ("gather", `Gather) ]

let apps () =
  let q1 = Lazy.force Datasets.q1_table in
  let ml = Lazy.force Datasets.ml_small in
  let cents = Lazy.force Datasets.centroids_small in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "kmeans",
      Dmll_apps.Kmeans.program ~rows:Datasets.ml_rows_small ~cols:Datasets.ml_cols
        ~k:Datasets.kmeans_k (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents );
    ( "pagerank",
      Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr) );
    ( "tpch_q1",
      Dmll_apps.Tpch_q1.program (),
      Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
  ]

(* Real element counts of the array inputs, so the static resolver works
   with the same sizes the simulator will serialize. *)
let input_lens_of (inputs : (string * V.t) list) : (string * int) list =
  List.filter_map
    (fun (n, v) ->
      match v with V.Varr _ -> Some (n, V.length v) | _ -> None)
    inputs

let traffic_total (r : R.Sim_common.result) (phase : string) : float =
  let suffix = "/" ^ phase in
  let slen = String.length suffix in
  List.fold_left
    (fun acc (nm, b) ->
      let nlen = String.length nm in
      if nlen >= slen && String.sub nm (nlen - slen) slen = suffix then acc +. b
      else acc)
    0.0 r.R.Sim_common.traffic

let run () =
  Printf.printf
    "Static comm-plan prediction vs measured simulator traffic\n\
     (contract: measured <= %.2fx predicted + %.0fB, per loop and phase;\n\
     \ enforced inline while the sweep runs).\n\n"
    Comm.slack Comm.slack_floor_bytes;
  let saved = !Comm.validate_enabled in
  Comm.validate_enabled := true;
  Fun.protect
    ~finally:(fun () -> Comm.validate_enabled := saved)
    (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let c =
            Dmll.compile_with
              (Dmll.Config.with_target Dmll.Sequential Dmll.Config.default)
              program
          in
          let input_lens = input_lens_of inputs in
          (* the simulator derives layouts the same way *)
          let layouts =
            (Partition.analyze ~transforms:[] ~reoptimize:Fun.id c.Dmll.final)
              .Partition.layouts
          in
          let layout_of t = Partition.layout_of t layouts in
          let resolver = Comm.static_resolver ~input_lens c.Dmll.final in
          let plans = Comm.of_program ~layout_of c.Dmll.final in
          List.iter
            (fun n ->
              let machine = M.with_nodes n M.ec2_cluster in
              let config = { R.Sim_cluster.default_config with cluster = machine } in
              let r = R.Sim_cluster.run ~config ~inputs c.Dmll.final in
              List.iter
                (fun (pname, p) ->
                  let predicted =
                    List.fold_left
                      (fun acc plan ->
                        acc
                        +. Comm.phase_bytes ~nodes:n ~layout_of resolver plan p)
                      0.0 plans
                  in
                  let measured = traffic_total r pname in
                  let ratio =
                    if predicted > 0.0 then measured /. predicted else 0.0
                  in
                  Printf.printf
                    "{\"app\":%S,\"nodes\":%d,\"phase\":%S,\"predicted_bytes\":%.0f,\"measured_bytes\":%.0f,\"ratio\":%.3f}\n%!"
                    name n pname predicted measured ratio)
                phases)
            node_counts)
        (apps ()))

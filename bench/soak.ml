(* Chaos soak (DESIGN.md §11): the headline robustness artifact.

   Generates a stream of random well-typed DMLL programs (the property-test
   generator, wrapped so every program owns a partitioned input and hence
   at least one distributed loop), then runs each on the simulated cluster
   under a randomized chaos regime — crashes, stragglers, lossy remote
   reads, membership churn (joins + graceful leaves), tight memory budgets,
   and periodic checkpoints with the restore-vs-replay recovery policy
   armed.  Every run's value must be bit-identical to the reference
   interpreter: chaos may only move the simulated clock, never the answer.

   Everything is seeded: same seed, same programs, same chaos, same
   decisions.  Exits nonzero on the first mismatch.  Emits a JSON
   recovery-cost profile at the end:

     {"programs":N,"checked":N,"skipped":K,"seed":S,
      "phases":{"detect":...,"recompute":...,"rebalance":...,
                "restore":...,"checkpoint":...,"churn":...,"spill":...},
      "events":{"injected":...,"joins":...,"leaves":...,
                "restores":...,"replays":...,"checkpoints":...},
      "decisions":[{"at_loop":...,"chosen":"restore",...},...]}

   A second, real-process leg (--proc-programs N) runs the same program
   stream on the forked-worker executor (DESIGN.md §14) under process
   murder — real SIGKILLs, SIGSTOP straggling, severed pipes — and
   asserts the murdered run bit-identical to the healthy process run
   (and the healthy run equal to the interpreter, within float-merge
   tolerance for reassociated float reductions).

   A third, TCP leg (--net-programs N) runs the stream on the
   TCP-attached-worker executor (DESIGN.md §16) under network chaos —
   real crashes plus blackholed links, mid-frame severs, CRC-failing
   frame corruption, and delivery delays on live loopback sockets —
   and asserts the faulted run bit-identical to the healthy TCP run.

   --deadline-s S arms a hard wall-clock watchdog (SIGALRM): if the
   whole soak exceeds S seconds it exits 124, so a wedged run can never
   hang a CI gate.

   Usage: soak.exe [--programs N] [--proc-programs N] [--net-programs N]
                   [--seed S] [--deadline-s S] [--verbose]
   The `dune build @soak` alias runs the short pinned simulated
   configuration; `@proc-soak` the pinned real-process leg; `@net-soak`
   the pinned TCP leg. *)

open Dmll_ir
module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Interp = Dmll_interp.Interp

let default_programs = 120
let default_seed = 20260807

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

(* Every program owns a partitioned input ("xs"), so the wrapper loop is
   distributed and the cluster's fault/churn/pressure machinery is always
   exercised.  Shared with the recovery-equivalence property tests. *)
let gen_soak_program : Exp.exp QCheck.Gen.t =
  Dmll_testgen.Gen_ir.partitioned_program

(* ------------------------------------------------------------------ *)
(* Chaos regimes                                                       *)
(* ------------------------------------------------------------------ *)

(* All chaos parameters are drawn from a private SplitMix64 stream keyed
   by the soak seed and the program number — reproducible and independent
   of generation order. *)
let chaos_config ~(seed : int) ~(program_no : int) =
  let rng = Dmll_util.Prng.create (seed lxor (program_no * 0x9E3779B9)) in
  let f bound = Dmll_util.Prng.float rng bound in
  let pick xs = List.nth xs (int_of_float (f (float_of_int (List.length xs)))) in
  let nodes = pick [ 2; 3; 5; 8 ] in
  let spec =
    { M.default_faults with
      M.fault_seed = seed + program_no;
      crash_prob = f 0.3;
      crash_transient_frac = 0.3 +. f 0.5;
      straggler_prob = f 0.2;
      read_drop_prob = f 0.05;
      read_delay_prob = f 0.05;
      join_prob = f 0.3;
      leave_prob = f 0.15;
      spare_nodes = pick [ 2; 3; 4 ];
      max_retries = 2;
      backoff_us = 1.0;
    }
  in
  let mem_budget_gb =
    (* every third program runs with a ~2KB budget, tight enough that its
       partition share spills and remote reads see backpressure *)
    if program_no mod 3 = 0 then Some 2e-6 else None
  in
  let injector = R.Fault.create spec in
  let store = R.Checkpoint.create ~cadence:(pick [ 1; 2; 3 ]) in
  let config =
    { R.Sim_cluster.default_config with
      cluster = M.with_nodes nodes M.ec2_cluster;
      faults = Some injector;
      mem_budget_gb;
    }
  in
  (config, injector, store)

(* ------------------------------------------------------------------ *)
(* The soak loop                                                       *)
(* ------------------------------------------------------------------ *)

let phase_names =
  R.Sim_common.recovery_phases @ R.Sim_common.elastic_phases
  @ [ "compute"; "broadcast"; "replicate"; "gather" ]

let run ?(programs = default_programs) ?(seed = default_seed)
    ?(verbose = false) () : int =
  let rand = Random.State.make [| seed |] in
  let progs = QCheck.Gen.generate ~n:programs ~rand gen_soak_program in
  let phase_totals = Hashtbl.create 16 in
  let add_phase p s =
    Hashtbl.replace phase_totals p
      (s +. Option.value ~default:0.0 (Hashtbl.find_opt phase_totals p))
  in
  let checked = ref 0 and skipped = ref 0 and mismatches = ref 0 in
  let injected = ref 0 and joins = ref 0 and leaves = ref 0 in
  let restores = ref 0 and replays = ref 0 and checkpoints = ref 0 in
  let all_decisions = ref [] in
  List.iteri
    (fun pno program ->
      let n = 256 + ((pno * 37) mod 512) in
      let inputs =
        [ ("xs", V.of_float_array (Array.init n (fun i -> float_of_int (i mod 23))))
        ]
      in
      match Interp.run ~inputs program with
      | exception Interp.Runtime_error _ -> incr skipped
      | expected ->
          let config, injector, store = chaos_config ~seed ~program_no:pno in
          let result =
            R.Sim_cluster.run ~config ~checkpoint:store ~inputs program
          in
          incr checked;
          if not (V.equal expected result.R.Sim_common.value) then begin
            incr mismatches;
            Printf.eprintf
              "MISMATCH program %d (seed %d):\n%s\nexpected %s\ngot      %s\n"
              pno seed
              (Dmll_ir.Pp.to_string program)
              (V.to_string expected)
              (V.to_string result.R.Sim_common.value)
          end;
          List.iter (fun p -> add_phase p (R.Sim_common.phase_total result p)) phase_names;
          injected := !injected + R.Fault.total_injected injector;
          joins := !joins + R.Fault.join_count injector;
          leaves := !leaves + R.Fault.leave_count injector;
          restores := !restores + R.Fault.restore_count injector;
          replays := !replays + R.Fault.replay_count injector;
          checkpoints := !checkpoints + R.Fault.checkpoint_count injector;
          all_decisions := !all_decisions @ R.Checkpoint.decisions store;
          if verbose then
            Printf.printf "program %3d: nodes=%d %s\n%!" pno
              config.R.Sim_cluster.cluster.M.nodes
              (R.Fault.stats_to_string injector))
    progs;
  let phases_json =
    String.concat ", "
      (List.map
         (fun p ->
           Printf.sprintf "\"%s\": %.6g" p
             (Option.value ~default:0.0 (Hashtbl.find_opt phase_totals p)))
         phase_names)
  in
  let decisions_json =
    String.concat ", "
      (List.map
         (fun (d : R.Checkpoint.decision) ->
           Printf.sprintf
             "{\"at_loop\": %d, \"chosen\": \"%s\", \"restore_cost_s\": \
              %.6g, \"replay_cost_s\": %.6g}"
             d.R.Checkpoint.decided_at_loop
             (R.Checkpoint.choice_to_string d.R.Checkpoint.chosen)
             d.R.Checkpoint.restore_cost d.R.Checkpoint.replay_cost)
         !all_decisions)
  in
  Printf.printf
    "{\"programs\": %d, \"checked\": %d, \"skipped\": %d, \"mismatches\": %d, \
     \"seed\": %d, \"phases\": {%s}, \"events\": {\"injected\": %d, \
     \"joins\": %d, \"leaves\": %d, \"restores\": %d, \"replays\": %d, \
     \"checkpoints\": %d}, \"decisions\": [%s]}\n"
    programs !checked !skipped !mismatches seed phases_json !injected !joins
    !leaves !restores !replays !checkpoints decisions_json;
  if !mismatches > 0 then 1
  else if !checked < 100 && programs >= 100 then begin
    Printf.eprintf
      "soak: only %d of %d programs were checkable (need >= 100)\n" !checked
      programs;
    1
  end
  else 0

(* ------------------------------------------------------------------ *)
(* Real-process leg (DESIGN.md §14)                                    *)
(* ------------------------------------------------------------------ *)

(* Per-program murder regime, drawn from a stream independent of the
   simulated leg's: every worker count and fault probability reproduces
   from (seed, program number) alone. *)
let proc_chaos ~(seed : int) ~(program_no : int) =
  let rng = Dmll_util.Prng.create ((seed + 77) lxor (program_no * 0x2545F491)) in
  let f bound = Dmll_util.Prng.float rng bound in
  let pick xs = List.nth xs (int_of_float (f (float_of_int (List.length xs)))) in
  let workers = pick [ 2; 3; 4 ] in
  let spec =
    { M.default_faults with
      M.fault_seed = seed + 1000 + program_no;
      crash_prob = 0.1 +. f 0.2;
      crash_transient_frac = 0.5 +. f 0.5;
      straggler_prob = f 0.15;
      straggler_slowdown = 20.0;
      max_retries = 2;
      backoff_us = 1.0;
    }
  in
  (workers, spec)

let proc_config ~workers ?faults () =
  { R.Proc_cluster.default_config with
    R.Proc_cluster.workers;
    faults;
    task_deadline_s = 2.0;
    heartbeat_s = 0.05;
  }

(* Run [programs] random programs on real forked workers, healthy and
   murdered, asserting the murdered value bit-identical to the healthy
   one and the healthy one equal to the interpreter (1e-6 for
   reassociated float merges).  Prints a JSON summary line; returns the
   exit code. *)
let run_proc ~(programs : int) ~(seed : int) ~(verbose : bool) () : int =
  let rand = Random.State.make [| seed lxor 0x5DEECE66 |] in
  let progs = QCheck.Gen.generate ~n:programs ~rand gen_soak_program in
  let checked = ref 0 and skipped = ref 0 and mismatches = ref 0 in
  let killed = ref 0 and pipe_cuts = ref 0 and stopped = ref 0 in
  let deadline_kills = ref 0 and heartbeat_kills = ref 0 in
  let respawned = ref 0 and recovered = ref 0 and master = ref 0 in
  List.iteri
    (fun pno program ->
      let n = 256 + ((pno * 53) mod 512) in
      let inputs =
        [ ("xs", V.of_float_array (Array.init n (fun i -> float_of_int (i mod 23))))
        ]
      in
      match Interp.run ~inputs program with
      | exception Interp.Runtime_error _ -> incr skipped
      | expected -> (
          let workers, spec = proc_chaos ~seed ~program_no:pno in
          let healthy =
            R.Proc_cluster.run ~config:(proc_config ~workers ()) ~inputs program
          in
          incr checked;
          if
            not
              (V.equal healthy.R.Proc_cluster.value expected
              || V.approx_equal ~eps:1e-6 expected healthy.R.Proc_cluster.value)
          then begin
            incr mismatches;
            Printf.eprintf
              "PROC MISMATCH (healthy vs interp) program %d (seed %d):\n\
               %s\nexpected %s\ngot      %s\n"
              pno seed
              (Dmll_ir.Pp.to_string program)
              (V.to_string expected)
              (V.to_string healthy.R.Proc_cluster.value)
          end;
          let injector = R.Fault.create spec in
          match
            R.Proc_cluster.run
              ~config:(proc_config ~workers ~faults:injector ())
              ~inputs program
          with
          | exception e ->
              incr mismatches;
              Printf.eprintf "PROC CRASH program %d (seed %d): %s\n" pno seed
                (Printexc.to_string e)
          | murdered ->
              (* the headline assertion: murdering workers never moves
                 the value — bit-identical, not approximately equal *)
              if
                not
                  (V.equal murdered.R.Proc_cluster.value
                     healthy.R.Proc_cluster.value)
              then begin
                incr mismatches;
                Printf.eprintf
                  "PROC MISMATCH (murdered vs healthy) program %d (seed %d):\n\
                   %s\nhealthy  %s\nmurdered %s\n"
                  pno seed
                  (Dmll_ir.Pp.to_string program)
                  (V.to_string healthy.R.Proc_cluster.value)
                  (V.to_string murdered.R.Proc_cluster.value)
              end;
              let s = murdered.R.Proc_cluster.stats in
              killed := !killed + s.R.Proc_cluster.killed;
              pipe_cuts := !pipe_cuts + s.R.Proc_cluster.pipe_cuts;
              stopped := !stopped + s.R.Proc_cluster.stopped;
              deadline_kills := !deadline_kills + s.R.Proc_cluster.deadline_kills;
              heartbeat_kills :=
                !heartbeat_kills + s.R.Proc_cluster.heartbeat_kills;
              respawned := !respawned + s.R.Proc_cluster.respawned;
              recovered := !recovered + s.R.Proc_cluster.recovered_chunks;
              master := !master + s.R.Proc_cluster.master_chunks;
              if verbose then
                Printf.printf "proc program %3d: workers=%d %s\n%!" pno workers
                  (R.Proc_cluster.stats_to_string s)))
    progs;
  Printf.printf
    "{\"proc_programs\": %d, \"checked\": %d, \"skipped\": %d, \
     \"mismatches\": %d, \"seed\": %d, \"events\": {\"killed\": %d, \
     \"pipe_cuts\": %d, \"stopped\": %d, \"deadline_kills\": %d, \
     \"heartbeat_kills\": %d, \"respawned\": %d, \"recovered_chunks\": %d, \
     \"master_chunks\": %d}}\n"
    programs !checked !skipped !mismatches seed !killed !pipe_cuts !stopped
    !deadline_kills !heartbeat_kills !respawned !recovered !master;
  if !mismatches > 0 then 1
  else if programs > 0 && !killed + !stopped + !pipe_cuts = 0 then begin
    Printf.eprintf "proc soak: chaos regime injected no process murder\n";
    1
  end
  else 0

(* ------------------------------------------------------------------ *)
(* TCP leg (DESIGN.md §16)                                             *)
(* ------------------------------------------------------------------ *)

(* Per-program network-chaos regime: crashes and stragglers as in the
   proc leg, plus the link fault classes — blackholed partitions,
   mid-frame severs, CRC-failing corruption, delivery delays — drawn
   from a stream independent of both other legs.  [heartbeat_ms] keys
   the injected partition duration; keep it short so a blackholed link
   costs milliseconds of soak wall-clock, not seconds. *)
let net_chaos ~(seed : int) ~(program_no : int) =
  let rng = Dmll_util.Prng.create ((seed + 131) lxor (program_no * 0x1B873593)) in
  let f bound = Dmll_util.Prng.float rng bound in
  let pick xs = List.nth xs (int_of_float (f (float_of_int (List.length xs)))) in
  let workers = pick [ 2; 3 ] in
  let spec =
    { M.default_faults with
      M.fault_seed = seed + 2000 + program_no;
      crash_prob = f 0.15;
      crash_transient_frac = 0.5 +. f 0.5;
      straggler_prob = f 0.1;
      straggler_slowdown = 20.0;
      partition_prob = f 0.08;
      sever_prob = f 0.08;
      corrupt_prob = f 0.08;
      link_delay_prob = f 0.1;
      link_delay_ms = 0.3;
      heartbeat_ms = 20.0;
      max_retries = 2;
      backoff_us = 1.0;
    }
  in
  (workers, spec)

let net_config ~workers ?faults () =
  { R.Net_cluster.default_config with
    R.Net_cluster.workers;
    faults;
    task_deadline_s = 0.6;
    heartbeat_s = 0.04;
    reconnect_grace_s = 0.1;
    max_respawns = 64;
  }

(* Run [programs] random programs on the TCP executor, healthy and under
   network chaos, asserting the chaos value bit-identical to the healthy
   one and the healthy one equal to the interpreter (1e-6 for
   reassociated float merges).  Hard-fails if the whole sweep delivered
   no link faults — a silent injector would turn this gate into a no-op.
   Prints a JSON summary line; returns the exit code. *)
let run_net ~(programs : int) ~(seed : int) ~(verbose : bool) () : int =
  let rand = Random.State.make [| seed lxor 0x2E1B2138 |] in
  let progs = QCheck.Gen.generate ~n:programs ~rand gen_soak_program in
  let checked = ref 0 and skipped = ref 0 and mismatches = ref 0 in
  let link_faults = ref 0 and disconnects = ref 0 and reconnects = ref 0 in
  let grace_expired = ref 0 and deadline_kills = ref 0 in
  let heartbeat_kills = ref 0 and frame_resends = ref 0 in
  let replans = ref 0 and respawned = ref 0 in
  let recovered = ref 0 and master = ref 0 in
  List.iteri
    (fun pno program ->
      let n = 256 + ((pno * 41) mod 512) in
      let inputs =
        [ ("xs", V.of_float_array (Array.init n (fun i -> float_of_int (i mod 23))))
        ]
      in
      match Interp.run ~inputs program with
      | exception Interp.Runtime_error _ -> incr skipped
      | expected -> (
          let workers, spec = net_chaos ~seed ~program_no:pno in
          let healthy =
            R.Net_cluster.run ~config:(net_config ~workers ()) ~inputs program
          in
          incr checked;
          if
            not
              (V.equal healthy.R.Net_cluster.value expected
              || V.approx_equal ~eps:1e-6 expected healthy.R.Net_cluster.value)
          then begin
            incr mismatches;
            Printf.eprintf
              "NET MISMATCH (healthy vs interp) program %d (seed %d):\n\
               %s\nexpected %s\ngot      %s\n"
              pno seed
              (Dmll_ir.Pp.to_string program)
              (V.to_string expected)
              (V.to_string healthy.R.Net_cluster.value)
          end;
          let injector = R.Fault.create spec in
          match
            R.Net_cluster.run
              ~config:(net_config ~workers ~faults:injector ())
              ~inputs program
          with
          | exception e ->
              incr mismatches;
              Printf.eprintf "NET CRASH program %d (seed %d): %s\n" pno seed
                (Printexc.to_string e)
          | faulted ->
              (* the headline assertion: network faults never move the
                 value — bit-identical, not approximately equal *)
              if
                not
                  (V.equal faulted.R.Net_cluster.value
                     healthy.R.Net_cluster.value)
              then begin
                incr mismatches;
                Printf.eprintf
                  "NET MISMATCH (faulted vs healthy) program %d (seed %d):\n\
                   %s\nhealthy %s\nfaulted %s\n"
                  pno seed
                  (Dmll_ir.Pp.to_string program)
                  (V.to_string healthy.R.Net_cluster.value)
                  (V.to_string faulted.R.Net_cluster.value)
              end;
              link_faults := !link_faults + R.Fault.link_fault_count injector;
              let s = faulted.R.Net_cluster.stats in
              disconnects := !disconnects + s.R.Net_cluster.disconnects;
              reconnects := !reconnects + s.R.Net_cluster.reconnects;
              grace_expired := !grace_expired + s.R.Net_cluster.grace_expired;
              deadline_kills := !deadline_kills + s.R.Net_cluster.deadline_kills;
              heartbeat_kills :=
                !heartbeat_kills + s.R.Net_cluster.heartbeat_kills;
              frame_resends := !frame_resends + s.R.Net_cluster.frame_resends;
              replans := !replans + s.R.Net_cluster.replans;
              respawned := !respawned + s.R.Net_cluster.respawned;
              recovered := !recovered + s.R.Net_cluster.recovered_chunks;
              master := !master + s.R.Net_cluster.master_chunks;
              if verbose then
                Printf.printf "net program %3d: workers=%d %s\n%!" pno workers
                  (R.Net_cluster.stats_to_string s)))
    progs;
  Printf.printf
    "{\"net_programs\": %d, \"checked\": %d, \"skipped\": %d, \
     \"mismatches\": %d, \"seed\": %d, \"events\": {\"link_faults\": %d, \
     \"disconnects\": %d, \"reconnects\": %d, \"grace_expired\": %d, \
     \"deadline_kills\": %d, \"heartbeat_kills\": %d, \"frame_resends\": %d, \
     \"replans\": %d, \"respawned\": %d, \"recovered_chunks\": %d, \
     \"master_chunks\": %d}}\n"
    programs !checked !skipped !mismatches seed !link_faults !disconnects
    !reconnects !grace_expired !deadline_kills !heartbeat_kills !frame_resends
    !replans !respawned !recovered !master;
  if !mismatches > 0 then 1
  else if programs > 0 && !link_faults = 0 then begin
    Printf.eprintf "net soak: chaos regime delivered no link faults\n";
    1
  end
  else 0

(* Hard wall-clock watchdog: a wedged soak exits 124 instead of hanging
   the CI gate.  SIGALRM is delivered to the parent only; workers forked
   later inherit the handler but never the pending alarm. *)
let arm_watchdog (deadline_s : int) : unit =
  if deadline_s > 0 then begin
    Sys.set_signal Sys.sigalrm
      (Sys.Signal_handle
         (fun _ ->
           Printf.eprintf "soak: wall-clock deadline (%ds) exceeded\n%!"
             deadline_s;
           exit 124));
    ignore (Unix.alarm deadline_s)
  end

let () =
  let programs = ref default_programs in
  let proc_programs = ref 0 in
  let net_programs = ref 0 in
  let seed = ref default_seed in
  let deadline_s = ref 0 in
  let verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--programs" :: v :: rest ->
        programs := int_of_string v;
        parse rest
    | "--proc-programs" :: v :: rest ->
        proc_programs := int_of_string v;
        parse rest
    | "--net-programs" :: v :: rest ->
        net_programs := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--deadline-s" :: v :: rest ->
        deadline_s := int_of_string v;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | a :: _ ->
        Printf.eprintf
          "soak: unknown argument %S\nusage: soak.exe [--programs N] \
           [--proc-programs N] [--net-programs N] [--seed S] \
           [--deadline-s S] [--verbose]\n"
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  arm_watchdog !deadline_s;
  let sim_code =
    if !programs > 0 then run ~programs:!programs ~seed:!seed ~verbose:!verbose ()
    else 0
  in
  let proc_code =
    if !proc_programs > 0 then
      run_proc ~programs:!proc_programs ~seed:!seed ~verbose:!verbose ()
    else 0
  in
  let net_code =
    if !net_programs > 0 then
      run_net ~programs:!net_programs ~seed:!seed ~verbose:!verbose ()
    else 0
  in
  exit (max sim_code (max proc_code net_code))

(* Chaos soak (DESIGN.md §11): the headline robustness artifact.

   Generates a stream of random well-typed DMLL programs (the property-test
   generator, wrapped so every program owns a partitioned input and hence
   at least one distributed loop), then runs each on the simulated cluster
   under a randomized chaos regime — crashes, stragglers, lossy remote
   reads, membership churn (joins + graceful leaves), tight memory budgets,
   and periodic checkpoints with the restore-vs-replay recovery policy
   armed.  Every run's value must be bit-identical to the reference
   interpreter: chaos may only move the simulated clock, never the answer.

   Everything is seeded: same seed, same programs, same chaos, same
   decisions.  Exits nonzero on the first mismatch.  Emits a JSON
   recovery-cost profile at the end:

     {"programs":N,"checked":N,"skipped":K,"seed":S,
      "phases":{"detect":...,"recompute":...,"rebalance":...,
                "restore":...,"checkpoint":...,"churn":...,"spill":...},
      "events":{"injected":...,"joins":...,"leaves":...,
                "restores":...,"replays":...,"checkpoints":...},
      "decisions":[{"at_loop":...,"chosen":"restore",...},...]}

   Usage: soak.exe [--programs N] [--seed S] [--verbose]
   The `dune build @soak` alias runs the short pinned configuration. *)

open Dmll_ir
module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Interp = Dmll_interp.Interp

let default_programs = 120
let default_seed = 20260807

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

(* Every program owns a partitioned input ("xs"), so the wrapper loop is
   distributed and the cluster's fault/churn/pressure machinery is always
   exercised.  Shared with the recovery-equivalence property tests. *)
let gen_soak_program : Exp.exp QCheck.Gen.t =
  Dmll_testgen.Gen_ir.partitioned_program

(* ------------------------------------------------------------------ *)
(* Chaos regimes                                                       *)
(* ------------------------------------------------------------------ *)

(* All chaos parameters are drawn from a private SplitMix64 stream keyed
   by the soak seed and the program number — reproducible and independent
   of generation order. *)
let chaos_config ~(seed : int) ~(program_no : int) =
  let rng = Dmll_util.Prng.create (seed lxor (program_no * 0x9E3779B9)) in
  let f bound = Dmll_util.Prng.float rng bound in
  let pick xs = List.nth xs (int_of_float (f (float_of_int (List.length xs)))) in
  let nodes = pick [ 2; 3; 5; 8 ] in
  let spec =
    { M.default_faults with
      M.fault_seed = seed + program_no;
      crash_prob = f 0.3;
      crash_transient_frac = 0.3 +. f 0.5;
      straggler_prob = f 0.2;
      read_drop_prob = f 0.05;
      read_delay_prob = f 0.05;
      join_prob = f 0.3;
      leave_prob = f 0.15;
      spare_nodes = pick [ 2; 3; 4 ];
      max_retries = 2;
      backoff_us = 1.0;
    }
  in
  let mem_budget_gb =
    (* every third program runs with a ~2KB budget, tight enough that its
       partition share spills and remote reads see backpressure *)
    if program_no mod 3 = 0 then Some 2e-6 else None
  in
  let injector = R.Fault.create spec in
  let store = R.Checkpoint.create ~cadence:(pick [ 1; 2; 3 ]) in
  let config =
    { R.Sim_cluster.default_config with
      cluster = M.with_nodes nodes M.ec2_cluster;
      faults = Some injector;
      mem_budget_gb;
    }
  in
  (config, injector, store)

(* ------------------------------------------------------------------ *)
(* The soak loop                                                       *)
(* ------------------------------------------------------------------ *)

let phase_names =
  R.Sim_common.recovery_phases @ R.Sim_common.elastic_phases
  @ [ "compute"; "broadcast"; "replicate"; "gather" ]

let run ?(programs = default_programs) ?(seed = default_seed)
    ?(verbose = false) () : int =
  let rand = Random.State.make [| seed |] in
  let progs = QCheck.Gen.generate ~n:programs ~rand gen_soak_program in
  let phase_totals = Hashtbl.create 16 in
  let add_phase p s =
    Hashtbl.replace phase_totals p
      (s +. Option.value ~default:0.0 (Hashtbl.find_opt phase_totals p))
  in
  let checked = ref 0 and skipped = ref 0 and mismatches = ref 0 in
  let injected = ref 0 and joins = ref 0 and leaves = ref 0 in
  let restores = ref 0 and replays = ref 0 and checkpoints = ref 0 in
  let all_decisions = ref [] in
  List.iteri
    (fun pno program ->
      let n = 256 + ((pno * 37) mod 512) in
      let inputs =
        [ ("xs", V.of_float_array (Array.init n (fun i -> float_of_int (i mod 23))))
        ]
      in
      match Interp.run ~inputs program with
      | exception Interp.Runtime_error _ -> incr skipped
      | expected ->
          let config, injector, store = chaos_config ~seed ~program_no:pno in
          let result =
            R.Sim_cluster.run ~config ~checkpoint:store ~inputs program
          in
          incr checked;
          if not (V.equal expected result.R.Sim_common.value) then begin
            incr mismatches;
            Printf.eprintf
              "MISMATCH program %d (seed %d):\n%s\nexpected %s\ngot      %s\n"
              pno seed
              (Dmll_ir.Pp.to_string program)
              (V.to_string expected)
              (V.to_string result.R.Sim_common.value)
          end;
          List.iter (fun p -> add_phase p (R.Sim_common.phase_total result p)) phase_names;
          injected := !injected + R.Fault.total_injected injector;
          joins := !joins + R.Fault.join_count injector;
          leaves := !leaves + R.Fault.leave_count injector;
          restores := !restores + R.Fault.restore_count injector;
          replays := !replays + R.Fault.replay_count injector;
          checkpoints := !checkpoints + R.Fault.checkpoint_count injector;
          all_decisions := !all_decisions @ R.Checkpoint.decisions store;
          if verbose then
            Printf.printf "program %3d: nodes=%d %s\n%!" pno
              config.R.Sim_cluster.cluster.M.nodes
              (R.Fault.stats_to_string injector))
    progs;
  let phases_json =
    String.concat ", "
      (List.map
         (fun p ->
           Printf.sprintf "\"%s\": %.6g" p
             (Option.value ~default:0.0 (Hashtbl.find_opt phase_totals p)))
         phase_names)
  in
  let decisions_json =
    String.concat ", "
      (List.map
         (fun (d : R.Checkpoint.decision) ->
           Printf.sprintf
             "{\"at_loop\": %d, \"chosen\": \"%s\", \"restore_cost_s\": \
              %.6g, \"replay_cost_s\": %.6g}"
             d.R.Checkpoint.decided_at_loop
             (R.Checkpoint.choice_to_string d.R.Checkpoint.chosen)
             d.R.Checkpoint.restore_cost d.R.Checkpoint.replay_cost)
         !all_decisions)
  in
  Printf.printf
    "{\"programs\": %d, \"checked\": %d, \"skipped\": %d, \"mismatches\": %d, \
     \"seed\": %d, \"phases\": {%s}, \"events\": {\"injected\": %d, \
     \"joins\": %d, \"leaves\": %d, \"restores\": %d, \"replays\": %d, \
     \"checkpoints\": %d}, \"decisions\": [%s]}\n"
    programs !checked !skipped !mismatches seed phases_json !injected !joins
    !leaves !restores !replays !checkpoints decisions_json;
  if !mismatches > 0 then 1
  else if !checked < 100 && programs >= 100 then begin
    Printf.eprintf
      "soak: only %d of %d programs were checkable (need >= 100)\n" !checked
      programs;
    1
  end
  else 0

let () =
  let programs = ref default_programs in
  let seed = ref default_seed in
  let verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--programs" :: v :: rest ->
        programs := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | a :: _ ->
        Printf.eprintf
          "soak: unknown argument %S\nusage: soak.exe [--programs N] [--seed \
           S] [--verbose]\n"
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  exit (run ~programs:!programs ~seed:!seed ~verbose:!verbose ())

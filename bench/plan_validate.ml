(* ILP-vs-greedy cross-validation of the global plan selection
   (DESIGN.md §15).

   For kmeans, pagerank, and TPC-H Q1 at 1/4/16 cluster nodes: compile
   the same program twice — once under [Config.plan_selector = Ilp]
   (the default) and once under [Greedy] — then compare both the static
   predicted volumes and the traffic the cluster simulator actually
   charges.  The sweep hard-fails when the ILP plan moves more measured
   bytes than the greedy plan (the selector's final guard promises it
   never does), or when either plan's value diverges from the
   sequential reference.  C-COMM-OVERRUN is armed inline, so each
   plan's own static comm contract is enforced while it runs.

   Emits one JSON line per (app, nodes) — mirrored into BENCH_plan.json:

     {"app":"kmeans","nodes":4,"provenance":"ilp",
      "predicted_ilp_bytes":...,"predicted_greedy_bytes":...,
      "measured_ilp_bytes":...,"measured_greedy_bytes":...,
      "value_ok":true}
*)

module R = Dmll_runtime
module M = Dmll_machine.Machine
module V = Dmll_interp.Value
module Comm = Dmll_analysis.Comm
module Partition = Dmll_analysis.Partition

let node_counts = [ 1; 4; 16 ]

let apps () =
  let q1 = Lazy.force Datasets.q1_table in
  let ml = Lazy.force Datasets.ml_small in
  let cents = Lazy.force Datasets.centroids_small in
  let pr = Lazy.force Datasets.pr_graph in
  [ ( "kmeans",
      Dmll_apps.Kmeans.program ~rows:Datasets.ml_rows_small ~cols:Datasets.ml_cols
        ~k:Datasets.kmeans_k (),
      Dmll_apps.Kmeans.inputs ml ~centroids:cents );
    ( "pagerank",
      Dmll_apps.Pagerank.program_pull ~nv:pr.Dmll_graph.Csr.nv (),
      Dmll_apps.Pagerank.inputs pr ~ranks:(Dmll_apps.Pagerank.initial_ranks pr) );
    ( "tpch_q1",
      Dmll_apps.Tpch_q1.program (),
      Dmll_apps.Tpch_q1.aos_inputs q1 @ Dmll_apps.Tpch_q1.soa_inputs q1 );
  ]

let input_lens_of (inputs : (string * V.t) list) : (string * int) list =
  List.filter_map
    (fun (n, v) ->
      match v with V.Varr _ -> Some (n, V.length v) | _ -> None)
    inputs

let traffic_sum (r : Dmll.run_result) : float =
  List.fold_left (fun acc (_, b) -> acc +. b) 0.0 r.Dmll.traffic

(* Compile + run one plan-selector leg; returns (predicted, measured,
   value, provenance of the last recorded decision). *)
let leg selector ~machine ~input_lens program inputs =
  let config = { R.Sim_cluster.default_config with cluster = machine } in
  let cfg =
    Dmll.Config.(
      default
      |> with_target (Dmll.Cluster config)
      |> with_plan_selector selector)
  in
  let c = Dmll.compile_with cfg program in
  let predicted =
    Partition.predicted_volume ~input_lens ~machine c.Dmll.final
  in
  let r = Dmll.execute cfg c ~inputs in
  let provenance =
    match List.rev c.Dmll.partition.Partition.decisions with
    | d :: _ -> d.Partition.provenance
    | [] -> "greedy"
  in
  (predicted, traffic_sum r, r.Dmll.value, provenance)

let run () =
  Printf.printf
    "Global plan selection: ILP vs greedy, predicted and measured\n\
     (contract: the ILP-selected plan's measured simulator traffic is\n\
     \ <= the greedy plan's; C-COMM-OVERRUN armed while the sweep runs).\n\n";
  let out = open_out "BENCH_plan.json" in
  let saved = !Comm.validate_enabled in
  Comm.validate_enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Comm.validate_enabled := saved;
      close_out out)
    (fun () ->
      List.iter
        (fun (name, program, inputs) ->
          let reference =
            (Dmll.execute Dmll.Config.default
               (Dmll.compile_with Dmll.Config.default program)
               ~inputs)
              .Dmll.value
          in
          let input_lens = input_lens_of inputs in
          List.iter
            (fun n ->
              let machine = M.with_nodes n M.ec2_cluster in
              let p_ilp, m_ilp, v_ilp, provenance =
                leg Dmll.Config.Ilp ~machine ~input_lens program inputs
              in
              let p_greedy, m_greedy, v_greedy, _ =
                leg Dmll.Config.Greedy ~machine ~input_lens program inputs
              in
              let value_ok v =
                V.equal v reference || V.approx_equal ~eps:1e-6 reference v
              in
              let ok = value_ok v_ilp && value_ok v_greedy in
              let line =
                Printf.sprintf
                  "{\"app\":%S,\"nodes\":%d,\"provenance\":%S,\"predicted_ilp_bytes\":%.0f,\"predicted_greedy_bytes\":%.0f,\"measured_ilp_bytes\":%.0f,\"measured_greedy_bytes\":%.0f,\"value_ok\":%b}"
                  name n provenance p_ilp p_greedy m_ilp m_greedy ok
              in
              Printf.printf "%s\n%!" line;
              output_string out (line ^ "\n");
              if not ok then begin
                Printf.eprintf "plan_validate: %s@%d nodes: value mismatch\n"
                  name n;
                exit 1
              end;
              if m_ilp > m_greedy then begin
                Printf.eprintf
                  "plan_validate: %s@%d nodes: ILP plan measured %.0fB > \
                   greedy %.0fB\n"
                  name n m_ilp m_greedy;
                exit 1
              end)
            node_counts)
        (apps ()))
